package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestZeroModelIsFree(t *testing.T) {
	var m Model
	if m.DiskCost(10, 1000) != 0 || m.NetCost(4096) != 0 || m.MemCost(50) != 0 {
		t.Error("zero model should charge nothing")
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	m := Default()
	disk := m.DiskCost(1, 0)
	net := m.NetCost(0)
	mem := m.MemCost(1)
	if !(disk > net && net > mem) {
		t.Errorf("cost ordering violated: disk=%v net=%v mem=%v", disk, net, mem)
	}
}

func TestDiskCostScalesWithBlocksAndPoints(t *testing.T) {
	m := Default()
	if m.DiskCost(2, 0) != 2*m.DiskSeek {
		t.Error("block scaling wrong")
	}
	if m.DiskCost(0, 10) != 10*m.DiskPoint {
		t.Error("point scaling wrong")
	}
	if m.DiskCost(3, 7) != 3*m.DiskSeek+7*m.DiskPoint {
		t.Error("combined cost wrong")
	}
}

func TestNetCost(t *testing.T) {
	m := Default()
	if m.NetCost(100) != m.NetHop+100*m.NetByte {
		t.Error("net cost wrong")
	}
}

func TestMeterAccumulates(t *testing.T) {
	mt := NewMeter()
	mt.Apply(5 * time.Millisecond)
	mt.Apply(3 * time.Millisecond)
	mt.Apply(0)
	mt.Apply(-time.Second) // non-positive: ignored
	if got := mt.Elapsed(); got != 8*time.Millisecond {
		t.Errorf("Elapsed = %v, want 8ms", got)
	}
	mt.Reset()
	if mt.Elapsed() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestMeterConcurrent(t *testing.T) {
	mt := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mt.Apply(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := mt.Elapsed(); got != 8000*time.Microsecond {
		t.Errorf("concurrent Elapsed = %v, want 8ms", got)
	}
}

func TestRealSleeps(t *testing.T) {
	r := NewReal()
	start := time.Now()
	r.Apply(2 * time.Millisecond)
	if wall := time.Since(start); wall < 2*time.Millisecond {
		t.Errorf("Real.Apply returned after %v, want >= 2ms", wall)
	}
	if r.Elapsed() != 2*time.Millisecond {
		t.Errorf("Elapsed = %v", r.Elapsed())
	}
}

func TestRealIgnoresNonPositive(t *testing.T) {
	r := NewReal()
	r.Apply(0)
	r.Apply(-time.Hour)
	if r.Elapsed() != 0 {
		t.Error("non-positive durations must be ignored")
	}
}
