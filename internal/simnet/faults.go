// Fault injection: a FaultPlan is the chaos-engineering companion to the
// cost model. Where Model/Sleeper make healthy I/O cost something, a
// FaultPlan makes nodes *misbehave* — crash, stall, lose replies, bounce
// admissions, or fail hard — so the coordinator's failure handling can be
// exercised deterministically inside one process.
//
// The plan is consulted by the cluster transport on every request; the zero
// state of every node is "healthy", and a nil *FaultPlan disables injection
// entirely (the hot path pays one nil check). Probabilistic decisions (reply
// drops) are derived from the plan's seed and a per-node request counter, so
// a sequential workload replays identically for the same seed.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// FaultKind enumerates the injectable per-node failure modes.
type FaultKind int

const (
	// FaultCrash makes a node unresponsive: the transport accepts the
	// request but no reply ever arrives, so only a caller deadline ends the
	// wait — the classic fail-stop node that, without timeouts, hangs every
	// query that touches it.
	FaultCrash FaultKind = iota
	// FaultPause injects a fixed extra delay ahead of every request the
	// node serves (a GC stall, a degraded disk, an overloaded VM neighbor).
	// The node still answers correctly, just late.
	FaultPause
	// FaultDrop loses the node's replies with a configured probability: the
	// request is fully served (caches populate, work is done) but the
	// response never reaches the caller.
	FaultDrop
	// FaultReject makes the node bounce every request immediately, as a
	// full admission queue would — a fast, retryable failure.
	FaultReject
	// FaultError makes the node answer every request with a permanent
	// internal error (corrupted shard, failed disk) — a fast, NON-retryable
	// failure the coordinator must propagate, not retry.
	FaultError

	numFaultKinds
)

var faultKindNames = [...]string{"crash", "pause", "drop", "reject", "error"}

func (k FaultKind) String() string {
	if k < 0 || int(k) >= len(faultKindNames) {
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
	return faultKindNames[k]
}

// ParseFaultKind maps a kind name ("crash", "pause", ...) back to its value.
func ParseFaultKind(s string) (FaultKind, error) {
	for i, n := range faultKindNames {
		if n == s {
			return FaultKind(i), nil
		}
	}
	return 0, fmt.Errorf("simnet: unknown fault kind %q", s)
}

// nodeFaults is one node's current failure state. The zero value is healthy.
type nodeFaults struct {
	crashed  bool
	pause    time.Duration
	dropProb float64
	reject   bool
	errored  bool
	dropSeq  uint64 // per-node request counter driving deterministic drops
}

func (f *nodeFaults) healthy() bool {
	return !f.crashed && f.pause == 0 && f.dropProb == 0 && !f.reject && !f.errored
}

// FaultPlan is a concurrency-safe registry of per-node fault states. It is
// mutable at runtime (chaos tests and the stashd /faults endpoint flip
// faults while traffic is flowing) and cheap to consult.
type FaultPlan struct {
	seed  int64
	mu    sync.Mutex
	nodes map[int]*nodeFaults
}

// NewFaultPlan returns an all-healthy plan whose probabilistic decisions
// derive from seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: seed, nodes: map[int]*nodeFaults{}}
}

func (p *FaultPlan) node(id int) *nodeFaults {
	nf := p.nodes[id]
	if nf == nil {
		nf = &nodeFaults{}
		p.nodes[id] = nf
	}
	return nf
}

// Crash marks the node fail-stop: it will never answer again until Recover.
func (p *FaultPlan) Crash(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.node(id).crashed = true
	mEventCrash.Inc()
}

// Pause injects d of extra latency ahead of every request the node serves.
// d <= 0 clears the pause.
func (p *FaultPlan) Pause(id int, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if d < 0 {
		d = 0
	}
	p.node(id).pause = d
	if d > 0 {
		mEventPause.Inc()
	}
}

// SetDropProb makes the node lose each reply with probability prob (clamped
// to [0,1]). The drop decision for the node's i-th request is a pure
// function of (seed, node, i).
func (p *FaultPlan) SetDropProb(id int, prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	p.node(id).dropProb = prob
	if prob > 0 {
		mEventDrop.Inc()
	}
}

// SetReject makes the node bounce every request at admission.
func (p *FaultPlan) SetReject(id int, reject bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.node(id).reject = reject
	if reject {
		mEventReject.Inc()
	}
}

// SetError makes the node answer every request with a permanent error.
func (p *FaultPlan) SetError(id int, errored bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.node(id).errored = errored
	if errored {
		mEventError.Inc()
	}
}

// Recover restores the node to full health, clearing every fault (the node
// "restarted"). The deterministic drop counter is preserved so replays that
// include heals stay reproducible.
func (p *FaultPlan) Recover(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if nf, ok := p.nodes[id]; ok {
		seq := nf.dropSeq
		*nf = nodeFaults{dropSeq: seq}
		mEventHeal.Inc()
	}
}

// Reset restores every node to full health.
func (p *FaultPlan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id := range p.nodes {
		seq := p.nodes[id].dropSeq
		p.nodes[id] = &nodeFaults{dropSeq: seq}
	}
}

// Crashed reports whether the node is currently fail-stopped.
func (p *FaultPlan) Crashed(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	nf := p.nodes[id]
	return nf != nil && nf.crashed
}

// PauseFor returns the extra latency currently injected ahead of the node's
// requests (zero when healthy).
func (p *FaultPlan) PauseFor(id int) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	nf := p.nodes[id]
	if nf == nil {
		return 0
	}
	return nf.pause
}

// Rejecting reports whether the node bounces requests at admission.
func (p *FaultPlan) Rejecting(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	nf := p.nodes[id]
	return nf != nil && nf.reject
}

// Erroring reports whether the node answers with a permanent error.
func (p *FaultPlan) Erroring(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	nf := p.nodes[id]
	return nf != nil && nf.errored
}

// DropReply decides whether the node's next reply is lost in flight. It
// advances the node's request counter, so for a fixed seed the i-th call for
// a node always returns the same answer regardless of wall-clock timing.
func (p *FaultPlan) DropReply(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	nf := p.nodes[id]
	if nf == nil || nf.dropProb == 0 {
		return false
	}
	seq := nf.dropSeq
	nf.dropSeq++
	if nf.dropProb >= 1 {
		return true
	}
	return unitFloat(uint64(p.seed), uint64(id), seq) < nf.dropProb
}

// Healthy reports whether the node currently has no fault at all.
func (p *FaultPlan) Healthy(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	nf := p.nodes[id]
	return nf == nil || nf.healthy()
}

// AllHealthy reports whether no node currently has any fault.
func (p *FaultPlan) AllHealthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, nf := range p.nodes {
		if !nf.healthy() {
			return false
		}
	}
	return true
}

// Faulted lists the ids of currently unhealthy nodes in ascending order.
func (p *FaultPlan) Faulted() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for id, nf := range p.nodes {
		if !nf.healthy() {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// unitFloat hashes (seed, node, seq) to a float64 in [0,1) with a
// splitmix64-style finalizer.
func unitFloat(a, b, c uint64) float64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// --- deterministic chaos schedules ---

// ScheduledFault is one event of a chaos schedule: immediately before
// workload step Step, Kind is applied to (Heal=false) or cleared from
// (Heal=true) node Node. Heal events clear *all* of the node's faults — the
// node restarted.
type ScheduledFault struct {
	Step     int
	Node     int
	Kind     FaultKind
	Heal     bool
	Pause    time.Duration // FaultPause: injected delay
	DropProb float64       // FaultDrop: reply-loss probability
}

func (s ScheduledFault) String() string {
	verb := "inject"
	if s.Heal {
		verb = "heal"
	}
	return fmt.Sprintf("step %d: %s %s on node %d", s.Step, verb, s.Kind, s.Node)
}

// Apply mutates the plan per the event.
func (p *FaultPlan) Apply(ev ScheduledFault) {
	if ev.Heal {
		p.Recover(ev.Node)
		return
	}
	switch ev.Kind {
	case FaultCrash:
		p.Crash(ev.Node)
	case FaultPause:
		d := ev.Pause
		if d <= 0 {
			d = 10 * time.Millisecond
		}
		p.Pause(ev.Node, d)
	case FaultDrop:
		prob := ev.DropProb
		if prob <= 0 {
			prob = 1
		}
		p.SetDropProb(ev.Node, prob)
	case FaultReject:
		p.SetReject(ev.Node, true)
	case FaultError:
		p.SetError(ev.Node, true)
	}
}

// GenerateFaultSchedule derives a deterministic chaos schedule from a seed:
// `events` fault injections placed uniformly over `steps` workload steps
// across `nodes` nodes, each paired with a heal a few steps later. Identical
// inputs always yield the identical schedule (the deterministic-replay
// contract: same seed ⇒ same fault schedule ⇒ same coverage report for a
// sequential workload).
//
// `kinds` restricts the generated fault kinds; nil/empty allows every kind
// except FaultError (permanent-error faults abort queries rather than
// degrade them, so chaos runs opt into them explicitly).
func GenerateFaultSchedule(seed int64, nodes, steps, events int, kinds ...FaultKind) []ScheduledFault {
	if nodes <= 0 || steps <= 0 || events <= 0 {
		return nil
	}
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultCrash, FaultPause, FaultDrop, FaultReject}
	}
	rng := rand.New(rand.NewSource(seed))
	healAfterMax := steps/4 + 1
	out := make([]ScheduledFault, 0, 2*events)
	for i := 0; i < events; i++ {
		ev := ScheduledFault{
			Step:     rng.Intn(steps),
			Node:     rng.Intn(nodes),
			Kind:     kinds[rng.Intn(len(kinds))],
			Pause:    time.Duration(5+rng.Intn(45)) * time.Millisecond,
			DropProb: 0.5 + rng.Float64()/2,
		}
		heal := ScheduledFault{
			Step: ev.Step + 1 + rng.Intn(healAfterMax),
			Node: ev.Node,
			Kind: ev.Kind,
			Heal: true,
		}
		out = append(out, ev, heal)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}
