package simnet

import "stash/internal/obs"

// Fault-injection event counters: one increment per injected (or healed)
// fault, regardless of how many requests it later affects. The per-request
// firings are counted at the cluster transport (stash_fault_firings_total),
// where the failure behaviour actually executes — a crash is injected once
// here but fires on every request that hits the dead node there.
var (
	mEventCrash  = faultEventCounter("crash")
	mEventPause  = faultEventCounter("pause")
	mEventDrop   = faultEventCounter("drop")
	mEventReject = faultEventCounter("reject")
	mEventError  = faultEventCounter("error")
	mEventHeal   = faultEventCounter("heal")
)

func faultEventCounter(kind string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_fault_events_total", "Chaos-plan fault injections and heals, by kind.")
	return r.Counter("stash_fault_events_total", "kind", kind)
}
