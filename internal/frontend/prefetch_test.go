package frontend

import (
	"testing"

	"stash/internal/geohash"
	"stash/internal/query"
)

// TestPrefetchWarmsPredictedFootprint is the deterministic end-to-end check
// of the prediction pipeline: a scripted two-step pan establishes momentum,
// Wait() lands the background prefetch, and then the *exact* footprint the
// momentum predictor names for step three must be resident in Cache() —
// data-bearing cells as summaries, dataless ones as negative-cache entries —
// before any third query is issued.
func TestPrefetchWarmsPredictedFootprint(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: true})

	q0 := stateQuery()
	q1 := q0.Pan(geohash.East, 0.10)
	if _, err := fc.Query(q0); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Query(q1); err != nil {
		t.Fatal(err)
	}
	fc.Wait()

	if got := fc.Stats().Prefetches; got < 1 {
		t.Fatalf("Prefetches = %d, want >= 1", got)
	}

	// Ask the predictor itself what the client must have prefetched, so the
	// assertion tracks the prediction logic rather than hard-coding a pan.
	predicted, ok := NewMomentumPredictor().Predict([]query.Query{q0, q1})
	if !ok {
		t.Fatal("momentum predictor found no pattern in a scripted pan pair")
	}
	keys, err := predicted.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if missing := fc.Cache().PLM().Missing(keys); len(missing) != 0 {
		t.Fatalf("prefetch left %d of %d predicted cells cold (first: %v)",
			len(missing), len(keys), missing[0])
	}

	// At least part of the predicted region carries data, and those summaries
	// must already be peekable in the front cache.
	populated := 0
	for _, k := range keys {
		if s, ok := fc.Cache().Peek(k); ok && !s.Empty() {
			populated++
		}
	}
	if populated == 0 {
		t.Fatal("predicted footprint resident but entirely empty; prefetch warmed nothing real")
	}

	// The scripted third step must now be answered without any back-end
	// round trip at all.
	backBefore := back.TotalStats().Processed
	r, err := fc.Query(predicted)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalStats().Processed != backBefore {
		t.Error("predicted query still reached the back-end")
	}
	if r.Len() != populated {
		t.Errorf("served %d cells, cache held %d populated", r.Len(), populated)
	}
}

// TestPrefetchSkipsDegradedPrediction pins the guard in runPrefetch: a
// prediction that fails validation (footprint over the cap, say) must be
// dropped silently, not crash the background goroutine or warm bad state.
func TestPrefetchSkipsDegradedPrediction(t *testing.T) {
	back := testBackend(t)
	bad := PredictorFunc(func(h []query.Query) (query.Query, bool) {
		q := stateQuery()
		q.SpatialRes = 0 // invalid on purpose
		return q, true
	})
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: true, Predictor: bad})
	if _, err := fc.Query(stateQuery()); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Query(stateQuery().Pan(geohash.East, 0.10)); err != nil {
		t.Fatal(err)
	}
	fc.Wait()
	if got := fc.Stats().Prefetches; got != 0 {
		t.Errorf("invalid prediction counted as %d prefetches", got)
	}
}
