package frontend

import (
	"math"

	"stash/internal/geohash"
	"stash/internal/query"
)

// Predictor guesses the user's next query from their recent navigation
// history (most recent last). ok is false when the history shows no usable
// pattern.
type Predictor interface {
	Predict(history []query.Query) (query.Query, bool)
}

// PredictorFunc adapts a function to the Predictor interface.
type PredictorFunc func(history []query.Query) (query.Query, bool)

// Predict calls f.
func (f PredictorFunc) Predict(history []query.Query) (query.Query, bool) {
	return f(history)
}

// momentumPredictor extrapolates the dominant visual-navigation patterns:
//
//   - panning momentum: if the last two queries are a translation of each
//     other at the same resolutions, the user is panning; predict one more
//     step of the same displacement.
//   - zoom momentum: same extent but the spatial resolution stepped up or
//     down; predict the next rung in the same direction.
//   - dicing momentum: same center but the extent scaled; predict one more
//     scaling step with the same area factor.
type momentumPredictor struct{}

// NewMomentumPredictor returns the default navigation predictor.
func NewMomentumPredictor() Predictor { return momentumPredictor{} }

const (
	// centerEps tolerates float drift when comparing box centers/extents.
	centerEps = 1e-9
	// minAreaChange below this relative area change, treat extents as equal.
	minAreaChange = 1e-6
)

func (momentumPredictor) Predict(history []query.Query) (query.Query, bool) {
	if len(history) < 2 {
		return query.Query{}, false
	}
	prev, cur := history[len(history)-2], history[len(history)-1]
	if prev.TemporalRes != cur.TemporalRes || prev.Time != cur.Time {
		return query.Query{}, false
	}

	sameExtent := near(prev.Box.Width(), cur.Box.Width()) && near(prev.Box.Height(), cur.Box.Height())

	// Zoom momentum: identical box, resolution stepping.
	if prev.Box == cur.Box && prev.SpatialRes != cur.SpatialRes {
		step := cur.SpatialRes - prev.SpatialRes
		next := cur
		next.SpatialRes = cur.SpatialRes + step
		if next.SpatialRes < 1 || next.SpatialRes > maxSpatialRes {
			return query.Query{}, false
		}
		return next, true
	}
	if prev.SpatialRes != cur.SpatialRes {
		return query.Query{}, false
	}

	// Panning momentum: translated box, same extent.
	if sameExtent && prev.Box != cur.Box {
		dLat := cur.Box.MinLat - prev.Box.MinLat
		dLon := cur.Box.MinLon - prev.Box.MinLon
		next := cur
		next.Box = geohash.Box{
			MinLat: cur.Box.MinLat + dLat, MaxLat: cur.Box.MaxLat + dLat,
			MinLon: cur.Box.MinLon + dLon, MaxLon: cur.Box.MaxLon + dLon,
		}.Clamp()
		if !next.Box.Valid() {
			return query.Query{}, false
		}
		return next, true
	}

	// Dicing momentum: same center, scaled extent.
	pLat, pLon := prev.Box.Center()
	cLat, cLon := cur.Box.Center()
	if math.Abs(pLat-cLat) < centerEps && math.Abs(pLon-cLon) < centerEps && !sameExtent {
		factor := cur.Box.Area() / prev.Box.Area()
		if math.Abs(factor-1) < minAreaChange || factor <= 0 {
			return query.Query{}, false
		}
		if factor < 1 {
			return cur.DiceShrink(1 - factor), true
		}
		return cur.DiceExpand(factor - 1), true
	}
	return query.Query{}, false
}

// maxSpatialRes mirrors cell.MaxSpatialPrecision without importing it here.
const maxSpatialRes = 8

func near(a, b float64) bool { return math.Abs(a-b) < centerEps }
