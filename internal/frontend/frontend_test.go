package frontend

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"stash/internal/simnet"

	"stash/internal/cluster"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/temporal"
)

func testBackend(t *testing.T) *cluster.Cluster {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 64
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func stateQuery() query.Query {
	return query.Query{
		Box:         geohash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
}

func TestClientColdThenLocal(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false})
	q := stateQuery()

	r1, err := fc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() == 0 {
		t.Fatal("cold query empty")
	}
	st := fc.Stats()
	if st.CellsFromBack == 0 || st.FullyLocal != 0 {
		t.Fatalf("cold stats wrong: %+v", st)
	}

	// The repeat must be answered without any back-end round trip at all.
	backBefore := back.TotalStats().Processed
	r2, err := fc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalStats().Processed != backBefore {
		t.Error("warm front-end query still reached the back-end")
	}
	if fc.Stats().FullyLocal != 1 {
		t.Errorf("FullyLocal = %d", fc.Stats().FullyLocal)
	}
	if r2.TotalCount("temperature") != r1.TotalCount("temperature") {
		t.Error("front-cache result differs from back-end result")
	}
}

func TestClientValidates(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{Prefetch: false})
	bad := stateQuery()
	bad.SpatialRes = 0
	if _, err := fc.Query(bad); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestClientPartialOverlapFetchesOnlyMissing(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false})
	q := stateQuery()
	if _, err := fc.Query(q); err != nil {
		t.Fatal(err)
	}
	panned := q.Pan(geohash.East, 0.10)
	before := fc.Stats()
	if _, err := fc.Query(panned); err != nil {
		t.Fatal(err)
	}
	after := fc.Stats()
	fetched := after.CellsFromBack - before.CellsFromBack
	served := after.CellsFromCache - before.CellsFromCache
	if served == 0 {
		t.Error("10% pan served nothing from the front cache")
	}
	n, _ := panned.FootprintCount()
	if fetched >= int64(n) {
		t.Errorf("pan fetched %d of %d cells — no reuse", fetched, n)
	}
}

func TestPrefetchHidesNextPan(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: true})
	q := stateQuery()

	// Two eastward pans establish momentum.
	if _, err := fc.Query(q); err != nil {
		t.Fatal(err)
	}
	q2 := q.Pan(geohash.East, 0.10)
	if _, err := fc.Query(q2); err != nil {
		t.Fatal(err)
	}
	fc.Wait() // let the prefetch of the predicted third step land

	if fc.Stats().Prefetches == 0 {
		t.Fatal("no prefetch issued despite panning momentum")
	}
	// The third pan must be fully local.
	q3 := q2.Pan(geohash.East, 0.10)
	backBefore := back.TotalStats().Processed
	if _, err := fc.Query(q3); err != nil {
		t.Fatal(err)
	}
	if back.TotalStats().Processed != backBefore {
		t.Error("predicted pan still hit the back-end")
	}
}

func TestPrefetchSingleFlight(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: true})
	q := stateQuery()
	for i := 0; i < 5; i++ {
		q = q.Pan(geohash.East, 0.05)
		if _, err := fc.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	fc.Wait()
	// No assertion on exact count; the invariant is that Wait returns (no
	// leaked goroutines) and queries stayed correct under racing prefetches.
	if fc.Stats().Queries != 5 {
		t.Errorf("queries = %d", fc.Stats().Queries)
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{})
	if fc.cache == nil || fc.predictor == nil {
		t.Fatal("defaults not applied")
	}
	if _, err := fc.Query(stateQuery()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	fc.Wait()
}

// --- predictor unit tests ---

func TestMomentumPredictorPanning(t *testing.T) {
	p := NewMomentumPredictor()
	q1 := stateQuery()
	q2 := q1.Pan(geohash.East, 0.10)
	next, ok := p.Predict([]query.Query{q1, q2})
	if !ok {
		t.Fatal("panning momentum not detected")
	}
	want := q2.Pan(geohash.East, 0.10)
	if !boxNear(next.Box, want.Box) {
		t.Errorf("predicted %v, want %v", next.Box, want.Box)
	}
}

func TestMomentumPredictorZoom(t *testing.T) {
	p := NewMomentumPredictor()
	q1 := stateQuery()
	q2, _ := q1.DrillDown()
	next, ok := p.Predict([]query.Query{q1, q2})
	if !ok || next.SpatialRes != q2.SpatialRes+1 {
		t.Errorf("zoom momentum: %v %v", next.SpatialRes, ok)
	}
	// Roll-up direction too.
	next, ok = p.Predict([]query.Query{q2, q1})
	if !ok || next.SpatialRes != q1.SpatialRes-1 {
		t.Errorf("roll-up momentum: %v %v", next.SpatialRes, ok)
	}
}

func TestMomentumPredictorZoomStopsAtLadderEnds(t *testing.T) {
	p := NewMomentumPredictor()
	q1 := stateQuery()
	q1.SpatialRes = 2
	q2 := q1
	q2.SpatialRes = 1
	if _, ok := p.Predict([]query.Query{q1, q2}); ok {
		t.Error("predicted below resolution 1")
	}
}

func TestMomentumPredictorDicing(t *testing.T) {
	p := NewMomentumPredictor()
	q1 := stateQuery()
	q2 := q1.DiceShrink(0.20)
	next, ok := p.Predict([]query.Query{q1, q2})
	if !ok {
		t.Fatal("dicing momentum not detected")
	}
	ratio := next.Box.Area() / q2.Box.Area()
	if ratio > 0.85 || ratio < 0.75 {
		t.Errorf("predicted area ratio %v, want ~0.8", ratio)
	}
}

func TestMomentumPredictorNoPattern(t *testing.T) {
	p := NewMomentumPredictor()
	if _, ok := p.Predict(nil); ok {
		t.Error("predicted from empty history")
	}
	if _, ok := p.Predict([]query.Query{stateQuery()}); ok {
		t.Error("predicted from single query")
	}
	q1 := stateQuery()
	q2 := q1
	q2.Time = temporal.DayRange(2015, 3, 1) // time jump: no momentum
	if _, ok := p.Predict([]query.Query{q1, q2}); ok {
		t.Error("predicted across a time jump")
	}
	if _, ok := p.Predict([]query.Query{q1, q1}); ok {
		t.Error("predicted from identical queries")
	}
}

func TestPredictorFuncAdapter(t *testing.T) {
	called := false
	p := PredictorFunc(func(h []query.Query) (query.Query, bool) {
		called = true
		return query.Query{}, false
	})
	p.Predict(nil)
	if !called {
		t.Error("adapter did not call the function")
	}
}

func boxNear(a, b geohash.Box) bool {
	const eps = 1e-9
	return abs(a.MinLat-b.MinLat) < eps && abs(a.MaxLat-b.MaxLat) < eps &&
		abs(a.MinLon-b.MinLon) < eps && abs(a.MaxLon-b.MaxLon) < eps
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestPartialBackendResultNotCached: when the back-end degrades to a partial
// result, the front-end must (a) surface the coverage report and (b) refuse
// to cache it — especially never negative-caching the failed keys — so that
// after the fault heals the same query returns the full answer.
func TestPartialBackendResultNotCached(t *testing.T) {
	fp := simnet.NewFaultPlan(21)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 64
	cfg.Faults = fp
	cfg.Resilience = cluster.ResilienceConfig{
		RequestTimeout:  25 * time.Millisecond,
		AllowPartial:    true,
		ScatterFallback: false,
	}
	back, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back.Start()
	t.Cleanup(back.Stop)

	q := stateQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	byNode := back.Client().GroupByOwner(keys)
	if len(byNode) < 2 {
		t.Fatalf("footprint spans %d owners; want several", len(byNode))
	}
	var victim int
	most := -1
	for id, ks := range byNode {
		if len(ks) > most {
			most, victim = len(ks), int(id)
		}
	}

	// Reference answer while healthy.
	want, err := back.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}

	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false})
	fp.Crash(victim)
	partial, err := fc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Coverage.Complete() {
		t.Fatalf("front-end hid the degradation: %v", partial.Coverage)
	}
	if partial.Coverage.Requested != len(keys) {
		t.Fatalf("propagated coverage describes %d keys, query has %d",
			partial.Coverage.Requested, len(keys))
	}
	if partial.TotalCount("temperature") >= want.TotalCount("temperature") {
		t.Fatal("partial result not actually partial")
	}

	// Heal; the front cache must not have poisoned the failed keys.
	fp.Recover(victim)
	healed, err := fc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !healed.Coverage.Complete() {
		t.Fatalf("post-heal coverage: %v", healed.Coverage)
	}
	if healed.TotalCount("temperature") != want.TotalCount("temperature") {
		t.Fatalf("post-heal counts differ (negative-cache poisoning?): %d vs %d",
			healed.TotalCount("temperature"), want.TotalCount("temperature"))
	}
}

// --- query singleflight tests ---

// TestQuerySingleflightFollowerSharesLeaderResult drives fetchShared
// deterministically: a flight is pre-registered for the query key, a
// follower attaches, and the test publishes the leader result. The follower
// must get an isolated shallow copy (fresh Cells map) and count as deduped.
func TestQuerySingleflightFollowerSharesLeaderResult(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false, Singleflight: true})
	q := stateQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}

	f := &feFlight{done: make(chan struct{})}
	fc.sfMu.Lock()
	fc.sf[q.String()] = f
	fc.sfMu.Unlock()

	type out struct {
		res query.Result
		err error
	}
	got := make(chan out, 1)
	go func() {
		r, err := fc.fetchShared(context.Background(), q.String(), keys)
		got <- out{r, err}
	}()

	want, err := fc.fetch(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	f.res = want
	fc.sfMu.Lock()
	delete(fc.sf, q.String())
	fc.sfMu.Unlock()
	close(f.done)

	o := <-got
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Len() != want.Len() || o.res.TotalCount("temperature") != want.TotalCount("temperature") {
		t.Fatalf("follower result diverges: %d/%d vs %d/%d",
			o.res.Len(), o.res.TotalCount("temperature"), want.Len(), want.TotalCount("temperature"))
	}
	if fc.Stats().Deduped != 1 {
		t.Errorf("Deduped = %d, want 1", fc.Stats().Deduped)
	}
	// The follower's Cells map must be its own: deleting from it must not
	// touch the leader's result.
	for k := range o.res.Cells {
		delete(o.res.Cells, k)
		break
	}
	if o.res.Len() == want.Len() {
		t.Fatal("delete had no effect; test is vacuous")
	}
	if want.Len() == o.res.Len() {
		t.Error("follower mutation reached the leader's result map")
	}
}

// TestQuerySingleflightLeaderErrorNotInherited: a follower whose leader
// failed must run its own fetch rather than surface the leader's error.
func TestQuerySingleflightLeaderErrorNotInherited(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false, Singleflight: true})
	q := stateQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}

	f := &feFlight{done: make(chan struct{}), err: context.Canceled}
	fc.sfMu.Lock()
	fc.sf[q.String()] = f
	fc.sfMu.Unlock()
	close(f.done)
	fc.sfMu.Lock()
	delete(fc.sf, q.String())
	fc.sfMu.Unlock()

	res, err := fc.fetchShared(context.Background(), q.String(), keys)
	if err != nil {
		t.Fatalf("follower inherited the leader's error: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("follower fallback fetch returned nothing")
	}
	if fc.Stats().Deduped != 0 {
		t.Errorf("a fallback fetch must not count as deduped (Deduped=%d)", fc.Stats().Deduped)
	}
}

// TestQuerySingleflightFollowerCancellation: a follower whose own context
// dies while waiting gets its context error, not a hang.
func TestQuerySingleflightFollowerCancellation(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false, Singleflight: true})
	q := stateQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}

	f := &feFlight{done: make(chan struct{})} // never resolves
	fc.sfMu.Lock()
	fc.sf[q.String()] = f
	fc.sfMu.Unlock()
	defer func() {
		fc.sfMu.Lock()
		delete(fc.sf, q.String())
		fc.sfMu.Unlock()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fc.fetchShared(ctx, q.String(), keys); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQuerySingleflightConcurrentStorm exercises the table under real
// concurrency (meaningful under -race): identical concurrent queries must
// all agree; the flight table must drain.
func TestQuerySingleflightConcurrentStorm(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false, Singleflight: true})
	q := stateQuery()

	const storm = 8
	results := make([]query.Result, storm)
	errs := make([]error, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = fc.Query(q)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i].TotalCount("temperature") != results[0].TotalCount("temperature") {
			t.Errorf("query %d disagrees with query 0", i)
		}
	}
	fc.sfMu.Lock()
	left := len(fc.sf)
	fc.sfMu.Unlock()
	if left != 0 {
		t.Errorf("%d flights leaked in the table", left)
	}
}

// TestQuerySingleflightOffPreservesBehavior: the zero Config must bypass the
// flight table entirely.
func TestQuerySingleflightOffPreservesBehavior(t *testing.T) {
	back := testBackend(t)
	fc := NewClient(back.Client(), Config{CacheCells: 50_000, Prefetch: false})
	if fc.singleflight {
		t.Fatal("zero Config enabled singleflight")
	}
	if _, err := fc.Query(stateQuery()); err != nil {
		t.Fatal(err)
	}
	if fc.Stats().Deduped != 0 {
		t.Errorf("Deduped = %d with singleflight off", fc.Stats().Deduped)
	}
}
