package frontend

import "stash/internal/obs"

// Front-end tier handles. Cache hit/miss/eviction counts for the front-end
// graph come from the shared stash_cache_* family with tier="frontend" (the
// graph itself counts them); here we add the stages and events only the
// front-end knows about.
var (
	mStageCacheProbe = stageCacheProbe()
	mPrefetches      = feCounter("stash_frontend_prefetches_total", "Background prefetches that landed in the front-end cache.")
	mFullyLocal      = feCounter("stash_frontend_fully_local_total", "Queries answered without any back-end round trip.")
	mDeduped         = feCounter("stash_frontend_dedup_total", "Queries answered by sharing a concurrent identical fetch (singleflight followers).")
)

func feCounter(name, help string) *obs.Counter {
	r := obs.Default()
	r.Help(name, help)
	return r.Counter(name)
}

func stageCacheProbe() *obs.Histogram {
	r := obs.Default()
	r.Help("stash_stage_duration_seconds", "Per-stage latency decomposition of the query path.")
	return r.Histogram("stash_stage_duration_seconds", "stage", "cache_probe")
}
