// Package frontend implements the paper's proposed future work (§IX-A):
//
//  1. a smaller-capacity STASH graph at the front-end, so a user browsing a
//     narrow spatiotemporal region is served without any round trip to the
//     back-end, and
//  2. a predictor of the user's access pattern that issues prefetching
//     queries for the region it expects next, hiding back-end latency behind
//     think-time.
//
// The front-end cache reuses the same stash.Graph data structure as the
// server shards — the paper's point is precisely that the structure works at
// any tier — just with a small capacity and no PLM invalidation traffic.
package frontend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/stash"
)

// Config tunes the front-end tier.
type Config struct {
	// CacheCells is the front-end STASH graph capacity. The paper suggests
	// a "smaller-capacity" graph; the default holds a handful of screens'
	// worth of cells.
	CacheCells int
	// Prefetch enables predictive prefetching of the next expected query.
	Prefetch bool
	// Predictor overrides the navigation predictor; nil selects
	// NewMomentumPredictor.
	Predictor Predictor
	// Singleflight dedups identical concurrent queries: when several UI
	// sessions ask for the same viewport at once (dashboards, shared links),
	// one leader runs the fetch and the rest share its result. A leader
	// failure never poisons followers — they fall back to their own fetch.
	// The zero Config leaves it off, preserving uncoalesced behavior.
	Singleflight bool
}

// DefaultConfig returns a 20k-cell prefetching front-end with query
// singleflight enabled.
func DefaultConfig() Config {
	return Config{CacheCells: 20_000, Prefetch: true, Singleflight: true}
}

// Stats counts front-end activity.
type Stats struct {
	Queries        int64
	CellsFromCache int64
	CellsFromBack  int64
	Prefetches     int64
	FullyLocal     int64 // queries answered without any back-end round trip
	Deduped        int64 // queries answered by sharing a concurrent identical fetch
}

// Client is a front-end query client: a small local STASH graph in front of
// the cluster coordinator, with optional prefetching. It is safe for
// concurrent use by the handlers of one UI session.
type Client struct {
	inner        *cluster.Client
	cache        *stash.Graph
	predictor    Predictor
	prefetch     bool
	singleflight bool

	mu      sync.Mutex
	history []query.Query
	stats   Stats
	// inflight tracks the single outstanding prefetch so they never pile up.
	prefetchBusy bool
	prefetchWG   sync.WaitGroup

	// sfMu guards the in-flight query table for singleflight dedup.
	sfMu sync.Mutex
	sf   map[string]*feFlight
}

// feFlight is one in-flight query fetch shared by every concurrent caller
// asking the identical query. res/err are written once, before done closes.
type feFlight struct {
	done chan struct{}
	res  query.Result
	err  error
}

// NewClient wraps a cluster client with a front-end tier.
func NewClient(inner *cluster.Client, cfg Config) *Client {
	if cfg.CacheCells <= 0 {
		cfg.CacheCells = DefaultConfig().CacheCells
	}
	sc := stash.DefaultConfig()
	sc.Capacity = cfg.CacheCells
	sc.Tier = "frontend"
	p := cfg.Predictor
	if p == nil {
		p = NewMomentumPredictor()
	}
	return &Client{
		inner:        inner,
		cache:        stash.NewGraph(sc),
		predictor:    p,
		prefetch:     cfg.Prefetch,
		singleflight: cfg.Singleflight,
		sf:           map[string]*feFlight{},
	}
}

// Stats snapshots the front-end counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Cache exposes the front-end graph (for tests and diagnostics). The graph
// carries its own internal mutex, so the returned handle is safe to probe
// concurrently with in-flight queries without taking the client's lock; c.mu
// guards only the client's bookkeeping (stats, history, and the
// prefetch-busy flag), never the graph itself.
func (c *Client) Cache() *stash.Graph { return c.cache }

// PrefetchBusy reports whether a background prefetch is currently in flight.
// The flag is read under the client mutex — the same lock every writer
// holds — so the answer is never torn, merely instantly stale.
func (c *Client) PrefetchBusy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prefetchBusy
}

// Query evaluates an aggregation query, serving whatever the front-end
// graph holds and fetching only the missing cells from the back-end. On
// return it records the query with the predictor and, if enabled, prefetches
// the predicted next query in the background.
func (c *Client) Query(q query.Query) (query.Result, error) {
	return c.QueryContext(context.Background(), q)
}

// QueryContext evaluates a query under the caller's context. Cancellation
// and deadline propagate into the back-end sub-requests; when the context
// carries an obs.Trace the front-end records a "query" root span with a
// "cache.probe" child ahead of the coordinator's fan-out spans.
func (c *Client) QueryContext(ctx context.Context, q query.Query) (query.Result, error) {
	ctx, qs := obs.StartSpan(ctx, "query")
	qs.SetAttr("query", q.String())
	qs.SetAttr("tier", "frontend")
	defer qs.End()
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	keys, err := q.Footprint()
	if err != nil {
		return query.Result{}, err
	}
	if p := obs.ProfileFromContext(ctx); p != nil { // guarded: String() allocates
		p.SetQuery(q.String())
		if len(keys) > 0 {
			k := keys[0]
			p.SetFootprint(len(keys), k.SpatialRes(), k.TemporalRes().String(), k.Level())
		}
	}
	res, err := c.fetchShared(ctx, q.String(), keys)
	if err != nil {
		return query.Result{}, err
	}

	c.mu.Lock()
	c.stats.Queries++
	c.history = append(c.history, q)
	if len(c.history) > 8 {
		c.history = c.history[len(c.history)-8:]
	}
	hist := make([]query.Query, len(c.history))
	copy(hist, c.history)
	doPrefetch := c.prefetch && !c.prefetchBusy
	if doPrefetch {
		c.prefetchBusy = true
	}
	c.mu.Unlock()

	if doPrefetch {
		if next, ok := c.predictor.Predict(hist); ok {
			c.prefetchWG.Add(1)
			go func() {
				defer c.prefetchWG.Done()
				defer func() {
					c.mu.Lock()
					c.prefetchBusy = false
					c.mu.Unlock()
				}()
				c.runPrefetch(next)
			}()
		} else {
			c.mu.Lock()
			c.prefetchBusy = false
			c.mu.Unlock()
		}
	}
	return res, nil
}

// fetchShared is the singleflight gate in front of fetch: identical queries
// in flight at the same moment share one fetch. The leader registers a
// flight keyed by the query's canonical string, runs the real fetch, and
// publishes; followers wait and shallow-copy the published result (fresh
// Cells map, shared immutable summaries) so later caller-side merges cannot
// alias the leader's map. A leader error is never inherited: followers whose
// leader failed — or whose own context expired first — run or fail on their
// own terms, so one cancelled tab cannot poison the others.
func (c *Client) fetchShared(ctx context.Context, qkey string, keys []cell.Key) (query.Result, error) {
	if !c.singleflight {
		return c.fetch(ctx, keys)
	}
	c.sfMu.Lock()
	if f := c.sf[qkey]; f != nil {
		c.sfMu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return query.Result{}, ctx.Err()
		}
		if f.err != nil {
			// Leader failed (its error may be its own cancellation); do the
			// work ourselves rather than inherit it.
			return c.fetch(ctx, keys)
		}
		c.mu.Lock()
		c.stats.Deduped++
		c.mu.Unlock()
		mDeduped.Inc()
		obs.ProfileFromContext(ctx).AddSingleflight(0, 1)
		out := query.NewResultCap(len(f.res.Cells))
		for k, s := range f.res.Cells {
			out.Add(k, s)
		}
		out.Coverage = f.res.Coverage
		return out, nil
	}
	f := &feFlight{done: make(chan struct{})}
	c.sf[qkey] = f
	c.sfMu.Unlock()

	f.res, f.err = c.fetch(ctx, keys)
	c.sfMu.Lock()
	delete(c.sf, qkey)
	c.sfMu.Unlock()
	close(f.done)
	return f.res, f.err
}

// fetch serves keys from the front cache, pulling misses from the back-end
// and populating the cache.
func (c *Client) fetch(ctx context.Context, keys []cell.Key) (query.Result, error) {
	probeStart := time.Now()
	_, ps := obs.StartSpan(ctx, "cache.probe")
	found, missing := c.cache.Get(keys)
	ps.SetAttr("hits", fmt.Sprint(len(keys)-len(missing)))
	ps.End()
	probeDur := time.Since(probeStart)
	mStageCacheProbe.ObserveDuration(probeDur)
	prof := obs.ProfileFromContext(ctx)
	prof.AddTier("frontend", len(keys)-len(missing), len(missing))
	prof.AddStage("cache.probe", probeDur)

	c.mu.Lock()
	c.stats.CellsFromCache += int64(len(keys) - len(missing))
	c.stats.CellsFromBack += int64(len(missing))
	if len(missing) == 0 {
		c.stats.FullyLocal++
	}
	c.mu.Unlock()

	if len(missing) == 0 {
		mFullyLocal.Inc()
		return found, nil
	}
	back, err := c.inner.FetchContext(ctx, missing)
	if err != nil {
		return query.Result{}, err
	}
	if back.Coverage.Complete() {
		c.cache.Put(back)
		var empties []cell.Key
		for _, k := range missing {
			if _, ok := back.Cells[k]; !ok {
				empties = append(empties, k)
			}
		}
		if len(empties) > 0 {
			c.cache.PutEmpty(empties)
		}
	}
	// A partial result (graceful degradation under node failures) is NOT
	// cacheable: an absent cell may be a failed share rather than an empty
	// region, and a degraded cell under-counts — negative-caching or storing
	// either would serve wrong warm answers long after the fault healed.
	// Coverage doesn't carry per-key detail, so skip caching entirely.
	found.Merge(back)
	cov := back.Coverage
	if cov.Requested > 0 {
		// Fold the locally served keys into the report so it describes the
		// whole front-end query, not just the back-end subset.
		cached := len(keys) - len(missing)
		cov.Requested += cached
		cov.Covered += cached
		cov.SharesRequested += cached
		cov.SharesServed += cached
	}
	found.Coverage = cov
	return found, nil
}

// runPrefetch pulls the predicted query's missing cells into the front
// cache without returning them to anyone.
func (c *Client) runPrefetch(q query.Query) {
	if err := q.Validate(); err != nil {
		return
	}
	keys, err := q.Footprint()
	if err != nil {
		return
	}
	missing := c.cache.PLM().Missing(keys)
	if len(missing) == 0 {
		return
	}
	back, err := c.inner.Fetch(missing)
	if err != nil || !back.Coverage.Complete() {
		// Never warm the cache from a degraded fetch (see fetch above).
		return
	}
	c.cache.Put(back)
	var empties []cell.Key
	for _, k := range missing {
		if _, ok := back.Cells[k]; !ok {
			empties = append(empties, k)
		}
	}
	if len(empties) > 0 {
		c.cache.PutEmpty(empties)
	}
	c.mu.Lock()
	c.stats.Prefetches++
	c.mu.Unlock()
	mPrefetches.Inc()
}

// Wait blocks until any in-flight prefetch has landed (tests and shutdown).
func (c *Client) Wait() { c.prefetchWG.Wait() }
