package temporal

import (
	"testing"
	"time"
)

// clampRange maps arbitrary fuzz integers onto a bounded, valid Range: start
// within [1900, 2100) and span within (0, ~400 days]. Cover materializes one
// label per covered unit, so the harness — not the fuzzer — must bound the
// walk; an unbounded range at Hour resolution would be a multi-million-label
// enumeration, not a test.
func clampRange(startSec, durSec int64) Range {
	const (
		epochLo = -2208988800       // 1900-01-01T00:00:00Z
		span    = 200 * 365 * 86400 // two centuries
		maxDur  = 400 * 86400       // ~400 days
	)
	s := epochLo + mod64(startSec, span)
	d := 1 + mod64(durSec, maxDur)
	start := time.Unix(s, 0).UTC()
	return Range{Start: start, End: start.Add(time.Duration(d) * time.Second)}
}

func mod64(v, m int64) int64 {
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}

// FuzzRangeCover checks the covering invariants for arbitrary ranges at every
// resolution: labels are valid, chronological, contiguous (each label's
// successor is the next label), the first contains the range start, the last
// reaches the range end, and CoverCount agrees with the materialized length.
func FuzzRangeCover(f *testing.F) {
	f.Add(int64(0), int64(86400), uint8(2))
	f.Add(int64(1422835200), int64(3600), uint8(3))     // 2015-02-02, one hour
	f.Add(int64(1422835200), int64(90*86400), uint8(1)) // month cover crossing Feb
	f.Add(int64(-1), int64(1), uint8(0))                // year boundary
	f.Add(int64(951782400), int64(2*86400), uint8(2))   // 2000-02-29 leap day
	f.Fuzz(func(t *testing.T, startSec, durSec int64, resRaw uint8) {
		res := Resolution(resRaw % 4)
		r := clampRange(startSec, durSec)
		labels, err := r.Cover(res)
		if err != nil {
			t.Fatalf("Cover(%v, %v): %v", r, res, err)
		}
		if len(labels) == 0 {
			t.Fatalf("Cover(%v, %v) returned no labels for a valid range", r, res)
		}
		n, err := r.CoverCount(res)
		if err != nil || n != len(labels) {
			t.Fatalf("CoverCount = %d, %v; len(Cover) = %d", n, err, len(labels))
		}
		first, last := labels[0], labels[len(labels)-1]
		if !first.Contains(r.Start) {
			t.Errorf("first label %v does not contain range start %v", first, r.Start)
		}
		lastEnd, err := last.End()
		if err != nil {
			t.Fatalf("last label %v: %v", last, err)
		}
		if lastEnd.Before(r.End) {
			t.Errorf("last label %v ends %v, before range end %v", last, lastEnd, r.End)
		}
		for i, l := range labels {
			if l.Res != res || !l.Valid() {
				t.Fatalf("label %d invalid: %+v", i, l)
			}
			if i == 0 {
				continue
			}
			next, err := labels[i-1].Next()
			if err != nil {
				t.Fatalf("Next(%v): %v", labels[i-1], err)
			}
			if next != l {
				t.Fatalf("cover not contiguous: %v.Next() = %v, cover has %v",
					labels[i-1], next, l)
			}
		}
	})
}

// FuzzLabelParse feeds arbitrary text to the label parser at every
// resolution: it must never panic, and any accepted label must round-trip —
// re-deriving the label from its own start instant reproduces it exactly,
// its span is non-empty, and Prev/Next are inverses across it.
func FuzzLabelParse(f *testing.F) {
	f.Add("2015-02", uint8(1))
	f.Add("2015-02-02", uint8(2))
	f.Add("2015-02-02T15", uint8(3))
	f.Add("2015", uint8(0))
	f.Add("0000-01-01", uint8(2))
	f.Add("9999-12-31T23", uint8(3))
	f.Add("not a label", uint8(2))
	f.Add("2015-13-45", uint8(2))
	f.Fuzz(func(t *testing.T, text string, resRaw uint8) {
		res := Resolution(resRaw % 4)
		l, err := Parse(text, res)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if !l.Valid() {
			t.Fatalf("Parse accepted %q but Valid() is false", text)
		}
		start, err := l.Start()
		if err != nil {
			t.Fatalf("accepted label %v has no start: %v", l, err)
		}
		end, err := l.End()
		if err != nil {
			t.Fatalf("accepted label %v has no end: %v", l, err)
		}
		if !end.After(start) {
			t.Fatalf("label %v spans nothing: [%v, %v)", l, start, end)
		}
		if rt := At(start, res); rt != l {
			t.Fatalf("round trip: At(%v, %v) = %v, want %v", start, res, rt, l)
		}
		next, err := l.Next()
		if err != nil {
			t.Fatalf("Next(%v): %v", l, err)
		}
		if !next.Valid() {
			// The label format is fixed-width (years 0000–9999); the
			// successor of the last representable label falls outside it.
			return
		}
		back, err := next.Prev()
		if err != nil {
			t.Fatalf("Prev(%v): %v", next, err)
		}
		if back != l {
			t.Fatalf("Prev(Next(%v)) = %v", l, back)
		}
	})
}
