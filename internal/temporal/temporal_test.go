package temporal

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResolutionLadder(t *testing.T) {
	if f, ok := Year.Finer(); !ok || f != Month {
		t.Errorf("Year.Finer() = %v,%v", f, ok)
	}
	if f, ok := Hour.Finer(); ok {
		t.Errorf("Hour.Finer() should fail, got %v", f)
	}
	if c, ok := Hour.Coarser(); !ok || c != Day {
		t.Errorf("Hour.Coarser() = %v,%v", c, ok)
	}
	if _, ok := Year.Coarser(); ok {
		t.Error("Year.Coarser() should fail")
	}
	if NumResolutions != 4 {
		t.Errorf("NumResolutions = %d, want 4", NumResolutions)
	}
}

func TestResolutionStrings(t *testing.T) {
	for r, want := range map[Resolution]string{Year: "Year", Month: "Month", Day: "Day", Hour: "Hour"} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
	if Resolution(42).String() == "" {
		t.Error("invalid resolution should still format")
	}
	if Resolution(42).Valid() {
		t.Error("Resolution(42) reported valid")
	}
}

func TestAtFormatsPaperLabels(t *testing.T) {
	ts := time.Date(2015, 3, 7, 14, 30, 0, 0, time.UTC)
	cases := map[Resolution]string{
		Year:  "2015",
		Month: "2015-03",
		Day:   "2015-03-07",
		Hour:  "2015-03-07T14",
	}
	for r, want := range cases {
		if got := At(ts, r); got.Text != want {
			t.Errorf("At(..., %v) = %q, want %q", r, got.Text, want)
		}
	}
}

func TestParseRejectsBadLabels(t *testing.T) {
	bad := []struct {
		text string
		res  Resolution
	}{
		{"2015-13", Month},
		{"2015-02-30", Day},
		{"hello", Year},
		{"2015-03", Day},
		{"2015", Resolution(9)},
	}
	for _, c := range bad {
		if _, err := Parse(c.text, c.res); err == nil {
			t.Errorf("Parse(%q,%v) accepted", c.text, c.res)
		}
	}
	if l, err := Parse("2015-03", Month); err != nil || !l.Valid() {
		t.Errorf("Parse valid month: %v %v", l, err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad label should panic")
		}
	}()
	MustParse("nope", Month)
}

func TestStartEnd(t *testing.T) {
	l := MustParse("2015-02", Month)
	s, err := l.Start()
	if err != nil {
		t.Fatal(err)
	}
	e, err := l.End()
	if err != nil {
		t.Fatal(err)
	}
	if s != time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("Start = %v", s)
	}
	if e != time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("End = %v (February must respect calendar length)", e)
	}
}

func TestContains(t *testing.T) {
	l := MustParse("2015-02-02", Day)
	if !l.Contains(time.Date(2015, 2, 2, 23, 59, 59, 0, time.UTC)) {
		t.Error("end-of-day instant should be inside")
	}
	if l.Contains(time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC)) {
		t.Error("next midnight should be outside (half-open)")
	}
	if l.Contains(time.Date(2015, 2, 1, 23, 59, 59, 0, time.UTC)) {
		t.Error("previous day should be outside")
	}
}

func TestParentChild(t *testing.T) {
	day := MustParse("2015-03-15", Day)
	p, ok := day.Parent()
	if !ok || p.Text != "2015-03" || p.Res != Month {
		t.Errorf("Parent = %v,%v", p, ok)
	}
	year := MustParse("2015", Year)
	if _, ok := year.Parent(); ok {
		t.Error("Year should have no parent")
	}

	feb, _ := Parse("2015-02", Month)
	ch, ok := feb.Children()
	if !ok || len(ch) != 28 {
		t.Fatalf("2015-02 children = %d,%v; want 28 days", len(ch), ok)
	}
	if ch[0].Text != "2015-02-01" || ch[27].Text != "2015-02-28" {
		t.Errorf("children range wrong: %v .. %v", ch[0], ch[27])
	}

	leapFeb := MustParse("2016-02", Month)
	if ch, _ := leapFeb.Children(); len(ch) != 29 {
		t.Errorf("2016-02 children = %d, want 29 (leap year)", len(ch))
	}

	hour := MustParse("2015-02-02T10", Hour)
	if _, ok := hour.Children(); ok {
		t.Error("Hour should have no children")
	}

	y := MustParse("2015", Year)
	if ch, _ := y.Children(); len(ch) != 12 {
		t.Errorf("year children = %d, want 12", len(ch))
	}
	d := MustParse("2015-02-02", Day)
	if ch, _ := d.Children(); len(ch) != 24 {
		t.Errorf("day children = %d, want 24", len(ch))
	}
}

func TestChildrenNestInParent(t *testing.T) {
	parent := MustParse("2015-06", Month)
	ps, _ := parent.Start()
	pe, _ := parent.End()
	ch, _ := parent.Children()
	for _, c := range ch {
		cs, _ := c.Start()
		ce, _ := c.End()
		if cs.Before(ps) || ce.After(pe) {
			t.Errorf("child %v [%v,%v) escapes parent [%v,%v)", c, cs, ce, ps, pe)
		}
		back, ok := c.Parent()
		if !ok || back != parent {
			t.Errorf("child %v parent = %v, want %v", c, back, parent)
		}
	}
}

// TestPaperTemporalNeighbors checks the exact example from the paper: the
// temporal neighbors of 2015-03 at Month resolution are 2015-02 and 2015-04.
func TestPaperTemporalNeighbors(t *testing.T) {
	l := MustParse("2015-03", Month)
	ns, err := l.Neighbors()
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].Text != "2015-02" || ns[1].Text != "2015-04" {
		t.Errorf("Neighbors(2015-03) = %v, want [2015-02 2015-04]", ns)
	}
}

func TestNextPrevCrossBoundaries(t *testing.T) {
	dec := MustParse("2015-12", Month)
	n, err := dec.Next()
	if err != nil || n.Text != "2016-01" {
		t.Errorf("Next(2015-12) = %v,%v", n, err)
	}
	jan := MustParse("2016-01-01", Day)
	p, err := jan.Prev()
	if err != nil || p.Text != "2015-12-31" {
		t.Errorf("Prev(2016-01-01) = %v,%v", p, err)
	}
	h := MustParse("2015-02-02T00", Hour)
	ph, _ := h.Prev()
	if ph.Text != "2015-02-01T23" {
		t.Errorf("Prev hour across midnight = %v", ph)
	}
}

func TestNextPrevInverse(t *testing.T) {
	f := func(monthOffset uint16) bool {
		base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, int(monthOffset%240), 0)
		for _, r := range []Resolution{Year, Month, Day, Hour} {
			l := At(base, r)
			n, err := l.Next()
			if err != nil {
				return false
			}
			back, err := n.Prev()
			if err != nil || back != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeCover(t *testing.T) {
	r := DayRange(2015, 2, 2)
	labels, err := r.Cover(Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 || labels[0].Text != "2015-02-02" {
		t.Errorf("day range day cover = %v", labels)
	}
	hours, err := r.Cover(Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 24 {
		t.Errorf("day range hour cover = %d labels, want 24", len(hours))
	}
	months, err := r.Cover(Month)
	if err != nil || len(months) != 1 || months[0].Text != "2015-02" {
		t.Errorf("day range month cover = %v,%v", months, err)
	}
}

func TestRangeCoverSpanningBoundary(t *testing.T) {
	r, err := NewRange(
		time.Date(2015, 1, 30, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 2, 3, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	days, err := r.Cover(Day)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 4 {
		t.Fatalf("cover = %v, want 4 days", days)
	}
	if days[0].Text != "2015-01-30" || days[3].Text != "2015-02-02" {
		t.Errorf("cover endpoints wrong: %v", days)
	}
	n, err := r.CoverCount(Day)
	if err != nil || n != 4 {
		t.Errorf("CoverCount = %d,%v", n, err)
	}
}

func TestRangeValidation(t *testing.T) {
	now := time.Now()
	if _, err := NewRange(now, now); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewRange(now, now.Add(-time.Hour)); err == nil {
		t.Error("inverted range accepted")
	}
	bad := Range{}
	if _, err := bad.Cover(Day); err == nil {
		t.Error("Cover on invalid range accepted")
	}
	good := DayRange(2015, 2, 2)
	if _, err := good.Cover(Resolution(17)); err == nil {
		t.Error("Cover with invalid resolution accepted")
	}
}

func TestRangeIntersects(t *testing.T) {
	a := DayRange(2015, 2, 2)
	b := DayRange(2015, 2, 3)
	if a.Intersects(b) {
		t.Error("adjacent half-open day ranges must not intersect")
	}
	c, _ := NewRange(
		time.Date(2015, 2, 2, 12, 0, 0, 0, time.UTC),
		time.Date(2015, 2, 3, 12, 0, 0, 0, time.UTC))
	if !a.Intersects(c) || !c.Intersects(b) {
		t.Error("overlapping ranges reported disjoint")
	}
}

func TestRangeContains(t *testing.T) {
	r := DayRange(2015, 2, 2)
	if !r.Contains(r.Start) {
		t.Error("range must contain its start")
	}
	if r.Contains(r.End) {
		t.Error("range must not contain its (exclusive) end")
	}
	if r.Duration() != 24*time.Hour {
		t.Errorf("Duration = %v", r.Duration())
	}
}

func TestResolutionDuration(t *testing.T) {
	if Hour.Duration() != time.Hour || Day.Duration() != 24*time.Hour {
		t.Error("fine durations wrong")
	}
	if Year.Duration() <= Month.Duration() || Month.Duration() <= Day.Duration() {
		t.Error("durations must decrease with finer resolutions")
	}
	if Resolution(99).Duration() != 0 {
		t.Error("invalid resolution should have zero duration")
	}
}

func BenchmarkRangeCoverDayOverMonth(b *testing.B) {
	r, _ := NewRange(
		time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC))
	for i := 0; i < b.N; i++ {
		if _, err := r.Cover(Day); err != nil {
			b.Fatal(err)
		}
	}
}
