// Package temporal implements the temporal half of STASH's spatiotemporal
// hierarchy: a fixed ladder of resolutions (Year → Month → Day → Hour), label
// encoding for each, and the parent/children/neighbor algebra that mirrors
// what package geohash provides for space.
//
// The paper labels cells with strings such as "2015-03" (Month resolution);
// this package reproduces that label format and adds Year, Day and Hour rungs
// so that roll-up and drill-down traverse a real hierarchy.
package temporal

import (
	"errors"
	"fmt"
	"time"
)

// Resolution is a rung on the temporal hierarchy, ordered from coarsest (Year)
// to finest (Hour). The zero value is Year.
type Resolution int

// The temporal resolutions supported by STASH, coarse to fine.
const (
	Year Resolution = iota
	Month
	Day
	Hour
	numResolutions
)

// NumResolutions is the paper's n_t: the count of temporal resolutions.
const NumResolutions = int(numResolutions)

var resolutionNames = [...]string{"Year", "Month", "Day", "Hour"}

func (r Resolution) String() string {
	if r < 0 || int(r) >= len(resolutionNames) {
		return fmt.Sprintf("Resolution(%d)", int(r))
	}
	return resolutionNames[r]
}

// Valid reports whether r is one of the defined resolutions.
func (r Resolution) Valid() bool { return r >= Year && r < numResolutions }

// Finer returns the next finer resolution; ok is false at Hour.
func (r Resolution) Finer() (Resolution, bool) {
	if r+1 >= numResolutions {
		return r, false
	}
	return r + 1, true
}

// Coarser returns the next coarser resolution; ok is false at Year.
func (r Resolution) Coarser() (Resolution, bool) {
	if r <= Year {
		return r, false
	}
	return r - 1, true
}

// Duration returns the nominal span of one label at this resolution. Month
// and Year use nominal civil lengths; exact spans depend on the label.
func (r Resolution) Duration() time.Duration {
	switch r {
	case Year:
		return 365 * 24 * time.Hour
	case Month:
		return 30 * 24 * time.Hour
	case Day:
		return 24 * time.Hour
	case Hour:
		return time.Hour
	}
	return 0
}

// layouts maps a resolution to its label layout in time.Format notation.
var layouts = [...]string{"2006", "2006-01", "2006-01-02", "2006-01-02T15"}

// ErrBadLabel reports a label that does not parse at the given resolution.
var ErrBadLabel = errors.New("temporal: bad label")

// Label is a temporal cell identifier: a resolution plus its formatted text,
// e.g. {Month, "2015-03"}. The zero value is invalid; build labels with At or
// Parse.
type Label struct {
	Res  Resolution
	Text string
}

// At returns the label containing the instant t at resolution r. All labels
// are in UTC.
func At(t time.Time, r Resolution) Label {
	return Label{Res: r, Text: t.UTC().Format(layouts[r])}
}

// Parse validates text as a label at resolution r.
func Parse(text string, r Resolution) (Label, error) {
	if !r.Valid() {
		return Label{}, fmt.Errorf("%w: resolution %d", ErrBadLabel, int(r))
	}
	if _, err := time.Parse(layouts[r], text); err != nil {
		return Label{}, fmt.Errorf("%w: %q at %v: %v", ErrBadLabel, text, r, err)
	}
	return Label{Res: r, Text: text}, nil
}

// MustParse is Parse for known-good literals; it panics on error.
func MustParse(text string, r Resolution) Label {
	l, err := Parse(text, r)
	if err != nil {
		panic(err)
	}
	return l
}

func (l Label) String() string { return l.Text }

// Valid reports whether the label parses at its resolution.
func (l Label) Valid() bool {
	_, err := Parse(l.Text, l.Res)
	return err == nil
}

// Start returns the first instant covered by the label.
func (l Label) Start() (time.Time, error) {
	t, err := time.Parse(layouts[l.Res], l.Text)
	if err != nil {
		return time.Time{}, fmt.Errorf("%w: %q: %v", ErrBadLabel, l.Text, err)
	}
	return t.UTC(), nil
}

// End returns the first instant after the label's span (exclusive end).
func (l Label) End() (time.Time, error) {
	s, err := l.Start()
	if err != nil {
		return time.Time{}, err
	}
	switch l.Res {
	case Year:
		return s.AddDate(1, 0, 0), nil
	case Month:
		return s.AddDate(0, 1, 0), nil
	case Day:
		return s.AddDate(0, 0, 1), nil
	case Hour:
		return s.Add(time.Hour), nil
	}
	return time.Time{}, fmt.Errorf("%w: resolution %v", ErrBadLabel, l.Res)
}

// Contains reports whether instant t falls within the label's span.
func (l Label) Contains(t time.Time) bool {
	s, err := l.Start()
	if err != nil {
		return false
	}
	e, _ := l.End()
	t = t.UTC()
	return !t.Before(s) && t.Before(e)
}

// Parent returns the label one resolution coarser that encloses l; ok is
// false at Year.
func (l Label) Parent() (Label, bool) {
	r, ok := l.Res.Coarser()
	if !ok {
		return Label{}, false
	}
	s, err := l.Start()
	if err != nil {
		return Label{}, false
	}
	return At(s, r), true
}

// Children returns the labels one resolution finer that tile l, in
// chronological order; ok is false at Hour. The child count varies with the
// calendar (28-31 days per month, 12 months per year, 24 hours per day).
func (l Label) Children() ([]Label, bool) {
	r, ok := l.Res.Finer()
	if !ok {
		return nil, false
	}
	s, err := l.Start()
	if err != nil {
		return nil, false
	}
	e, _ := l.End()
	var out []Label
	for t := s; t.Before(e); {
		out = append(out, At(t, r))
		switch r {
		case Month:
			t = t.AddDate(0, 1, 0)
		case Day:
			t = t.AddDate(0, 0, 1)
		case Hour:
			t = t.Add(time.Hour)
		default:
			return nil, false
		}
	}
	return out, true
}

// Next returns the chronologically following label at the same resolution.
func (l Label) Next() (Label, error) {
	e, err := l.End()
	if err != nil {
		return Label{}, err
	}
	return At(e, l.Res), nil
}

// Prev returns the chronologically preceding label at the same resolution.
func (l Label) Prev() (Label, error) {
	s, err := l.Start()
	if err != nil {
		return Label{}, err
	}
	return At(s.Add(-time.Second), l.Res), nil
}

// Neighbors returns the two lateral temporal neighbors of l (previous and
// next), matching the paper's example of 2015-03 having neighbors 2015-02 and
// 2015-04.
func (l Label) Neighbors() ([]Label, error) {
	p, err := l.Prev()
	if err != nil {
		return nil, err
	}
	n, err := l.Next()
	if err != nil {
		return nil, err
	}
	return []Label{p, n}, nil
}

// Range is a half-open time interval [Start, End).
type Range struct {
	Start, End time.Time
}

// NewRange builds a validated range.
func NewRange(start, end time.Time) (Range, error) {
	if !end.After(start) {
		return Range{}, fmt.Errorf("%w: range end %v not after start %v", ErrBadLabel, end, start)
	}
	return Range{Start: start.UTC(), End: end.UTC()}, nil
}

// DayRange is a convenience constructor for the paper's single-day query
// windows (e.g. 2015-02-02).
func DayRange(year int, month time.Month, day int) Range {
	s := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Range{Start: s, End: s.AddDate(0, 0, 1)}
}

// Valid reports whether the range is non-empty.
func (r Range) Valid() bool { return r.End.After(r.Start) }

// Duration returns the span of the range.
func (r Range) Duration() time.Duration { return r.End.Sub(r.Start) }

// Contains reports whether t falls inside the range.
func (r Range) Contains(t time.Time) bool {
	return !t.Before(r.Start) && t.Before(r.End)
}

// Intersects reports whether two ranges share any instant.
func (r Range) Intersects(o Range) bool {
	return r.Start.Before(o.End) && o.Start.Before(r.End)
}

// Cover returns the labels at resolution res that intersect the range, in
// chronological order. It is the temporal analogue of geohash.Cover.
func (r Range) Cover(res Resolution) ([]Label, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("%w: empty range", ErrBadLabel)
	}
	if !res.Valid() {
		return nil, fmt.Errorf("%w: resolution %d", ErrBadLabel, int(res))
	}
	var out []Label
	l := At(r.Start, res)
	for {
		out = append(out, l)
		e, err := l.End()
		if err != nil {
			return nil, err
		}
		if !e.Before(r.End) {
			return out, nil
		}
		l = At(e, res)
	}
}

// CoverCount returns len(Cover(res)) without materializing the labels.
func (r Range) CoverCount(res Resolution) (int, error) {
	labels, err := r.Cover(res)
	if err != nil {
		return 0, err
	}
	return len(labels), nil
}
