package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Nodes <= 0 || o.PointsPerBlock <= 0 || o.Out == nil {
		t.Errorf("normalization incomplete: %+v", o)
	}
}

func TestOptionsPick(t *testing.T) {
	q := Options{Quick: true}
	f := Options{Quick: false}
	if q.pick(1, 10) != 1 || f.pick(1, 10) != 10 {
		t.Error("pick selected wrong scale")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must have a registered runner.
	want := []string{
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e",
		"fig8a", "fig8b", "fig8c",
		"abl-freshness", "abl-plm", "abl-antipode",
		"ext-frontend",
		"ext-faults",
		"ext-coalesce",
		"ext-elastic",
		"ext-merge",
		"diff",
	}
	have := map[string]bool{}
	for _, id := range Experiments() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(have), len(want), Experiments())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99x", DefaultOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestReportPrint(t *testing.T) {
	rep := Report{
		ID:      "t1",
		Title:   "test report",
		Columns: []string{"name", "value"},
	}
	rep.AddRow("alpha", "1")
	rep.AddRow("longer-name", "22")
	rep.AddNote("a note with %d args", 2)

	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	for _, want := range []string{"t1", "test report", "alpha", "longer-name", "a note with 2 args"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed report missing %q:\n%s", want, out)
		}
	}
	// Columns must be aligned: both data rows start their value column at
	// the same offset.
	lines := strings.Split(out, "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.Contains(l, "alpha") || strings.Contains(l, "longer-name") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 {
		t.Fatalf("data lines = %d", len(dataLines))
	}
	if strings.Index(dataLines[0], "1") != strings.Index(dataLines[1], "22") {
		t.Errorf("columns not aligned:\n%s\n%s", dataLines[0], dataLines[1])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.50" {
		t.Errorf("ms = %q", got)
	}
	if got := ratio(10*time.Millisecond, 2*time.Millisecond); got != "5.0x" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(time.Second, 0); got != "inf" {
		t.Errorf("ratio/0 = %q", got)
	}
	if got := pct(10*time.Millisecond, 4*time.Millisecond); got != "60.0%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(0, time.Millisecond); got != "0%" {
		t.Errorf("pct base 0 = %q", got)
	}
}

func TestAvg(t *testing.T) {
	if avg(nil) != 0 {
		t.Error("avg of nothing should be 0")
	}
	if got := avg([]time.Duration{time.Second, 3 * time.Second}); got != 2*time.Second {
		t.Errorf("avg = %v", got)
	}
}

func TestExperimentModelOrdering(t *testing.T) {
	m := experimentModel()
	if !(m.DiskSeek > m.NetHop && m.NetHop > m.MemCell) {
		t.Errorf("cost ordering violated: %+v", m)
	}
	if m.DiskPoint <= 0 {
		t.Error("per-point disk cost must dominate; zero disables the contrast")
	}
}

// TestRunAblationAntipodeSmoke runs the cheapest registered experiment end
// to end through the public entry point.
func TestRunAblationAntipodeSmoke(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Nodes = 8
	opts.Out = &buf
	rep, err := Run("abl-antipode", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	anti, err1 := strconv.Atoi(rep.Rows[0][2])
	rnd, err2 := strconv.Atoi(rep.Rows[1][2])
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable counts: %v", rep.Rows)
	}
	if anti > rnd {
		t.Errorf("antipode helpers on hotspot owners (%d) exceed random (%d)", anti, rnd)
	}
	if !strings.Contains(buf.String(), "abl-antipode") {
		t.Error("report not printed to Out")
	}
}

// TestRunExtFaultsSmoke runs the fault-injection experiment end to end and
// asserts its shape: deadlines alone turn faults into errors, the resilient
// coordinator turns the same faults into partial answers with honest
// coverage.
func TestRunExtFaultsSmoke(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Nodes = 8
	opts.Out = &buf
	rep, err := Run("ext-faults", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 tiers", len(rep.Rows))
	}
	row := map[string][]string{}
	for _, r := range rep.Rows {
		row[r[0]] = r
	}
	errsOf := func(name string) int {
		n, err := strconv.Atoi(row[name][4])
		if err != nil {
			t.Fatalf("tier %s: unparseable error count %q", name, row[name][4])
		}
		return n
	}
	covOf := func(name string) float64 {
		v, err := strconv.ParseFloat(row[name][5], 64)
		if err != nil {
			t.Fatalf("tier %s: unparseable coverage %q", name, row[name][5])
		}
		return v
	}
	if n := errsOf("healthy"); n != 0 {
		t.Errorf("healthy tier reported %d errors", n)
	}
	if c := covOf("healthy"); c != 1 {
		t.Errorf("healthy tier coverage %v, want 1.00", c)
	}
	if n := errsOf("deadline-only"); n == 0 {
		t.Error("deadline-only tier reported no errors despite 2 faulted nodes")
	}
	if n := errsOf("resilient"); n != 0 {
		t.Errorf("resilient tier reported %d hard errors; partials should absorb faults", n)
	}
	if c := covOf("resilient"); c <= 0 || c >= 1 {
		t.Errorf("resilient tier coverage %v, want in (0,1)", c)
	}
	if !strings.Contains(buf.String(), "ext-faults") {
		t.Error("report not printed to Out")
	}
}

// TestRunExtCoalesceSmoke runs the duplicate-heavy multi-session experiment
// and asserts the acceptance shape: with coalescing + singleflight on, the
// same workload reads no more disk blocks (it should read far fewer — the
// concurrent identical misses share one scan) and measurably fewer request
// bytes go on the wire. Assertions are weak inequalities so scheduler
// timing can't flake the suite; the strong ratios are quoted in the notes.
func TestRunExtCoalesceSmoke(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Nodes = 8
	opts.Out = &buf
	rep, out, err := runExtCoalesce(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want off/on", len(rep.Rows))
	}
	if out.blocksOn > out.blocksOff {
		t.Errorf("coalescing read MORE disk blocks: on=%d off=%d", out.blocksOn, out.blocksOff)
	}
	if out.batches <= 0 {
		t.Errorf("no coalesced batches recorded (batches=%v)", out.batches)
	}
	if out.bytesSaved <= 0 {
		t.Errorf("no request bytes saved (bytesSaved=%v)", out.bytesSaved)
	}
	if out.dedupKeys <= 0 {
		t.Errorf("no duplicate keys elided (dedupKeys=%v)", out.dedupKeys)
	}
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "ext-coalesce") {
		t.Error("report not printed")
	}
}

// TestRunExtMergeSmoke runs the fan-in experiment at reduced width and
// asserts the acceptance shape: the tournament beats the serial fold at 16
// shares and beyond (the 8-share row is allowed to tie — goroutine overhead
// can eat the win at narrow fan-out).
func TestRunExtMergeSmoke(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Out = &buf
	rep, out, err := runExtMerge(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(out.widths) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(out.widths))
	}
	// The shape assertion only holds without the race detector: -race
	// serializes through its happens-before machinery on every semaphore and
	// mutex hop, which taxes the tournament's synchronization far more than
	// the serial fold's single goroutine.
	if !raceEnabled {
		for i, width := range out.widths {
			if width >= 16 && out.tournament[i] >= out.serial[i] {
				t.Errorf("tournament lost at %d shares: %v vs serial %v",
					width, out.tournament[i], out.serial[i])
			}
		}
	}
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "ext-merge") {
		t.Error("report not printed")
	}
}

// TestRunExtElasticSmoke runs the elastic-membership experiment and asserts
// the acceptance shape: the join rehashes part of the warmed footprint, the
// warm handoff actually ships cells, and the first post-join pass reads
// fewer disk blocks warm than cold. Cold-arm recovery (dip -> recovered)
// shows the dip is cache loss, not a permanent regression.
func TestRunExtElasticSmoke(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Nodes = 8
	opts.Out = &buf
	rep, out, err := runExtElastic(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 10 {
		t.Fatalf("rows = %d, want 5 phases x 2 modes", len(rep.Rows))
	}
	if out.movedKeys == 0 {
		t.Fatal("join moved no footprint keys; reseed the workload so the experiment exercises the handoff")
	}
	if out.cellsMigrated <= 0 || out.bytesMigrated <= 0 {
		t.Errorf("warm handoff shipped nothing: cells=%d bytes=%d", out.cellsMigrated, out.bytesMigrated)
	}
	if out.dipCold <= out.steadyCold {
		t.Errorf("cold join shows no hit-rate dip: steady=%d dip=%d blocks", out.steadyCold, out.dipCold)
	}
	if out.dipWarm >= out.dipCold {
		t.Errorf("warm handoff did not beat cold join: warm dip=%d cold dip=%d blocks", out.dipWarm, out.dipCold)
	}
	if out.recoveredCold >= out.dipCold {
		t.Errorf("cold arm did not recover: dip=%d recovered=%d blocks", out.dipCold, out.recoveredCold)
	}
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "ext-elastic") {
		t.Error("report not printed")
	}
}

func TestNewRngDeterministic(t *testing.T) {
	a := newRng(Options{Seed: 7}, 3)
	b := newRng(Options{Seed: 7}, 3)
	if a.Int63() != b.Int63() {
		t.Error("rng not deterministic per (seed, salt)")
	}
	c := newRng(Options{Seed: 7}, 4)
	if a.Int63() == c.Int63() {
		t.Error("different salts should diverge (probabilistically)")
	}
}

// TestRunDiffSmoke runs the differential-oracle experiment end to end at a
// reduced scale and asserts its gate semantics: one row per matrix config,
// every status ok, nil error. (A divergence would return an error carrying
// the shrunk repro; that path is exercised by the difftest mutation smoke.)
func TestRunDiffSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is not -short sized")
	}
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Out = &buf
	rep, err := Run("diff", opts)
	if err != nil {
		t.Fatalf("differential gate failed: %v", err)
	}
	if len(rep.Rows) < 8 {
		t.Fatalf("diff covered %d configs, want the full matrix (>= 8)", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r[len(r)-1] != "ok" {
			t.Errorf("config %s status %q", r[0], r[len(r)-1])
		}
	}
	if !strings.Contains(buf.String(), "zero divergence") {
		t.Error("report missing the zero-divergence note")
	}
}
