package bench

import (
	"fmt"

	"stash/internal/oracle/difftest"
)

func init() {
	registry["diff"] = Diff
}

// Diff runs the differential correctness harness as a stashbench experiment:
// every configuration of the difftest matrix (striping, coalescing,
// serve-side singleflight, replication, live updates, fault injection) is
// driven through seeded randomized OLAP navigation sessions and every
// response is cross-checked cell-by-cell against the sequential oracle.
//
// Unlike the performance experiments this one has a hard pass/fail: any
// divergence aborts the run with the failing config, seed, and the shrunk
// minimal repro, so `stashbench -exp diff` exits non-zero and can gate a
// release the same way the CI differential step does. Quick runs use
// CI-sized sessions; -full uses the default 200-step x 4-session load. The
// cluster scale (nodes, block density) is the harness's own calibrated size,
// not -nodes/-points: the oracle re-scans raw blocks per query, so the
// differential gate trades cluster scale for config-matrix breadth.
func Diff(opts Options) (Report, error) {
	rep := Report{
		ID:      "diff",
		Title:   "differential correctness: cluster vs sequential oracle",
		Columns: []string{"config", "queries", "cells", "complete", "partial", "errors", "updates", "status"},
	}
	dopts := difftest.Options{
		Seed:     uint64(opts.Seed),
		Steps:    opts.pick(60, 200),
		Sessions: opts.pick(2, 4),
	}
	var total difftest.Stats
	for _, cfg := range difftest.Matrix() {
		stats, fail := difftest.Run(cfg, dopts)
		status := "ok"
		if fail != nil {
			status = "FAIL:" + fail.Kind
		}
		rep.AddRow(cfg.Name,
			fmt.Sprint(stats.Queries), fmt.Sprint(stats.Cells),
			fmt.Sprint(stats.Complete), fmt.Sprint(stats.Partial),
			fmt.Sprint(stats.Errors), fmt.Sprint(stats.Updates), status)
		if fail != nil {
			rep.AddNote("%s diverged from the oracle:\n%s", cfg.Name, fail.Error())
			rep.Print(opts.Out)
			return rep, fmt.Errorf("bench: differential harness failed on %s: %w", cfg.Name, fail)
		}
		total.Queries += stats.Queries
		total.Cells += stats.Cells
		total.Repeats += stats.Repeats
		total.PanPairs += stats.PanPairs
	}
	rep.AddNote("%d configs, %d queries, %d cells cross-checked, %d repeat-identity and %d pan-continuity checks, zero divergence",
		len(difftest.Matrix()), total.Queries, total.Cells, total.Repeats, total.PanPairs)
	return rep, nil
}
