package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/query"
	"stash/internal/temporal"
)

func init() {
	registry["ext-merge"] = ExtMerge
}

// mergeOutcome carries the structured serial-vs-tournament numbers so tests
// can assert the shape (tournament wins from 16 shares up) without re-parsing
// table rows.
type mergeOutcome struct {
	widths     []int
	serial     []time.Duration
	tournament []time.Duration
}

// ExtMerge measures the coordinator's reply fan-in: the legacy serial fold
// (one goroutine merges k node replies after the fan-out barrier, O(k) depth)
// against the parallel tournament (replies merge pairwise as they land on the
// reply goroutines, O(log k) depth, pooled columnar arenas). Reply shapes
// mirror production: sibling shares of one viewport, so partials overlap
// heavily and the merge is dominated by same-key stat folds.
func ExtMerge(opts Options) (Report, error) {
	rep, _, err := runExtMerge(opts)
	return rep, err
}

func runExtMerge(opts Options) (Report, mergeOutcome, error) {
	rep := Report{
		ID:      "ext-merge",
		Title:   "coordinator reply fan-in: serial fold vs parallel tournament",
		Columns: []string{"shares", "keys/share", "serial_ms", "tournament_ms", "speedup"},
	}
	out := mergeOutcome{widths: []int{8, 16, 32, 64}}

	keysPerPart := opts.pick(256, 1024)
	universe := 4 * keysPerPart // sibling shares overlap on ~1/4 of keys
	reps := opts.pick(20, 60)

	for _, width := range out.widths {
		parts := mergeParts(newRng(opts, int64(width)), width, keysPerPart, universe)
		serial := timeMerge(parts, -1, reps)
		tourn := timeMerge(parts, 0, reps)
		out.serial = append(out.serial, serial)
		out.tournament = append(out.tournament, tourn)
		rep.AddRow(fmt.Sprintf("%d", width), fmt.Sprintf("%d", keysPerPart),
			ms(serial), ms(tourn), ratio(serial, tourn))
	}

	for i, width := range out.widths {
		if width >= 16 && out.tournament[i] >= out.serial[i] {
			rep.AddNote("SHAPE MISS: tournament did not beat serial at %d shares (%s vs %s)",
				width, ms(out.tournament[i])+"ms", ms(out.serial[i])+"ms")
		}
	}
	last := len(out.widths) - 1
	rep.AddNote("tournament speedup grows with fan-out: %s at %d shares -> %s at %d shares",
		ratio(out.serial[0], out.tournament[0]), out.widths[0],
		ratio(out.serial[last], out.tournament[last]), out.widths[last])
	rep.AddNote("steady-state pooled columnar merge: %.1f allocs/op (CI gate: 0)",
		mergeAllocsPerOp(mergeParts(newRng(opts, 1), 16, keysPerPart, universe), reps))
	return rep, out, nil
}

// mergeAllocsPerOp measures heap allocations per pooled columnar merge at
// steady state — the same quantity BenchmarkResultMergeSteadyState gates at
// zero — so the trajectory JSON records it alongside the speedups.
func mergeAllocsPerOp(parts []query.Result, reps int) float64 {
	fold := func() {
		c := query.GetColumnar()
		for _, p := range parts {
			c.MergeResult(p)
		}
		c.Release()
	}
	for i := 0; i < 8; i++ {
		fold() // warm the pools and pre-grow capacities
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		fold()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(reps)
}

// mergeParts builds node-reply-shaped results: width results of keysPerPart
// cells drawn from a shared key universe.
func mergeParts(rng *rand.Rand, width, keysPerPart, universe int) []query.Result {
	day := temporal.Label{Res: temporal.Day, Text: "2015-02-01"}
	parts := make([]query.Result, width)
	for p := range parts {
		parts[p] = query.NewResult()
		for i := 0; i < keysPerPart; i++ {
			s := cell.NewSummary()
			s.Observe("temperature", rng.NormFloat64()*30)
			s.Observe("humidity", rng.Float64()*100)
			s.Observe("precipitation", rng.Float64()*10)
			k := cell.Key{Geohash: fmt.Sprintf("9q%05d", rng.Intn(universe)), Time: day}
			parts[p].Add(k, s)
		}
	}
	return parts
}

// timeMerge folds the same parts reps times through the fan-in and returns
// the mean wall time per merge.
func timeMerge(parts []query.Result, workers, reps int) time.Duration {
	// One untimed pass warms the Result/arena pools so the tournament is
	// measured at steady state, like the coordinator after its first queries.
	cluster.MergeResults(parts, workers)
	start := time.Now()
	for i := 0; i < reps; i++ {
		cluster.MergeResults(parts, workers)
	}
	return time.Since(start) / time.Duration(reps)
}
