package bench

import (
	"fmt"
	"time"

	"stash/internal/geohash"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/workload"
)

func init() {
	registry["ext-coalesce"] = ExtCoalesce
}

// coalesceOutcome carries the structured numbers behind the ext-coalesce
// report so tests can assert the shape (fewer disk blocks, bytes actually
// saved) instead of re-parsing table rows.
type coalesceOutcome struct {
	makespanOff time.Duration
	makespanOn  time.Duration
	blocksOff   int64
	blocksOn    int64
	cellsOff    int64
	cellsOn     int64
	batches     float64
	dedupKeys   float64
	hopsSaved   float64
	bytesSaved  float64
	sfShared    float64
}

// ExtCoalesce measures request coalescing under the duplicate-heavy workload
// it was built for: many concurrent UI sessions replaying the same panning
// path — the shared-dashboard case where every viewport step lands on the
// same owners carrying the same cell keys within microseconds. The runner
// contrasts a plain cluster against one with the admission-window coalescer
// plus serve-side singleflight, on identical workloads and seeds.
func ExtCoalesce(opts Options) (Report, error) {
	rep, _, err := runExtCoalesce(opts)
	return rep, err
}

func runExtCoalesce(opts Options) (Report, coalesceOutcome, error) {
	rep := Report{
		ID:      "ext-coalesce",
		Title:   "request coalescing + singleflight under duplicate-heavy concurrent sessions",
		Columns: []string{"mode", "sessions", "steps", "makespan_ms", "blocks_read", "disk_cells", "batches", "dedup_keys", "bytes_saved"},
	}
	var out coalesceOutcome

	nSessions := opts.pick(6, 16)
	steps := opts.pick(6, 12)
	// One deterministic pan path, replayed verbatim by every session: the
	// maximally duplicated workload (shared dashboards, broadcast links).
	path := make([]query.Query, 0, steps)
	q := workload.RandomQuery(newRng(opts, 23), workload.State)
	for i := 0; i < steps; i++ {
		path = append(path, q)
		q = q.Pan(geohash.East, 0.25)
	}
	sessions := make([][]query.Query, nSessions)
	for i := range sessions {
		sessions[i] = path
	}

	for _, on := range []bool{false, true} {
		o := opts
		o.Coalesce = on
		if on && o.CoalesceWindow <= 0 {
			// A generous window for the experiment: concurrent sessions are
			// scheduler-aligned, not clock-aligned, so give stragglers a
			// chance to merge.
			o.CoalesceWindow = time.Millisecond
		}
		c, err := buildCluster(o, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, out, err
		}
		before := obs.Default().FlatSnapshot()
		mk, err := runSessions(c, sessions, nSessions)
		st := c.TotalStats()
		c.Stop()
		if err != nil {
			return rep, out, err
		}
		after := obs.Default().FlatSnapshot()
		delta := func(key string) float64 { return after[key] - before[key] }

		mode := "coalesce=off"
		if on {
			mode = "coalesce=on"
			out.makespanOn = mk
			out.blocksOn = st.BlocksRead
			out.cellsOn = st.DiskCells
			out.batches = delta("stash_coalesce_batches_total")
			out.dedupKeys = delta("stash_coalesce_dedup_keys_total")
			out.hopsSaved = delta("stash_coalesce_hops_saved_total")
			out.bytesSaved = delta("stash_coalesce_bytes_saved_total")
			out.sfShared = delta(`stash_node_singleflight_total{role="shared"}`)
		} else {
			out.makespanOff = mk
			out.blocksOff = st.BlocksRead
			out.cellsOff = st.DiskCells
		}
		rep.AddRow(mode, fmt.Sprintf("%d", nSessions), fmt.Sprintf("%d", steps),
			ms(mk), fmt.Sprintf("%d", st.BlocksRead), fmt.Sprintf("%d", st.DiskCells),
			fmt.Sprintf("%.0f", delta("stash_coalesce_batches_total")),
			fmt.Sprintf("%.0f", delta("stash_coalesce_dedup_keys_total")),
			fmt.Sprintf("%.0f", delta("stash_coalesce_bytes_saved_total")))
	}

	if out.blocksOff > 0 {
		rep.AddNote("disk blocks: %d -> %d (%.1f%% fewer) — singleflight shares concurrent identical misses",
			out.blocksOff, out.blocksOn, 100*(1-float64(out.blocksOn)/float64(out.blocksOff)))
	}
	rep.AddNote("coalescer merged %0.f duplicate keys into %0.f batches, saving %0.f hops and %0.f request bytes",
		out.dedupKeys, out.batches, out.hopsSaved, out.bytesSaved)
	rep.AddNote("makespan: %s -> %s", ms(out.makespanOff)+"ms", ms(out.makespanOn)+"ms")
	return rep, out, nil
}
