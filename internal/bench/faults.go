package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"stash/internal/cluster"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/workload"
)

func init() {
	registry["ext-faults"] = ExtFaults
}

// ExtFaults measures graceful degradation under injected node faults. One
// node is crashed and one is paused past the request deadline, then a mixed
// country/state workload runs against three coordinator configurations:
//
//	healthy         resilient coordinator, no faults (baseline cost of the
//	                machinery itself)
//	deadline-only   faults active; deadlines and retries but no partial
//	                answers — queries touching a faulted owner fail
//	resilient       faults active; scatter fallback plus partial answers
//	                with coverage accounting — queries degrade instead of
//	                failing
//
// The shape to reproduce: deadline-only converts faults into hard errors,
// resilient converts the same faults into partial answers (errors -> 0)
// whose coverage ratio honestly reports what was lost, at a bounded latency
// premium on the affected tail.
func ExtFaults(opts Options) (Report, error) {
	rep := Report{
		ID:      "ext-faults",
		Title:   "fault injection: deadlines, failover, partial answers",
		Columns: []string{"tier", "queries", "p50_ms", "p99_ms", "errors", "coverage"},
	}
	n := opts.pick(16, 64)

	// The same query mix for every tier.
	rng := newRng(opts, 21)
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		size := workload.State
		if i%3 == 0 {
			size = workload.Country
		}
		qs = append(qs, workload.RandomQuery(rng, size))
	}

	base := cluster.ResilienceConfig{
		RequestTimeout: 25 * time.Millisecond,
		Retries:        1,
		RetryBackoff:   time.Millisecond,
	}
	if raceEnabled {
		// The deadline is sized against the warm STASH path; under -race
		// that path is several times slower, so widen it to keep the
		// healthy tier cleanly inside its deadline. The faults stay
		// proportionally unreachable (pause = 2x the timeout below).
		base.RequestTimeout = 150 * time.Millisecond
	}
	resilient := base
	resilient.AllowPartial = true
	resilient.ScatterFallback = true
	// HelperReroute stays off: this run stages no replicas, so probing
	// helpers could only add dead time to the failure path.

	type tier struct {
		name   string
		faults bool
		rc     cluster.ResilienceConfig
	}
	for _, tr := range []tier{
		{"healthy", false, resilient},
		{"deadline-only", true, base},
		{"resilient", true, resilient},
	} {
		// The plan is wired in healthy and armed only after warm-up, so
		// every tier measures the steady state the deadline is sized for.
		fp := simnet.NewFaultPlan(opts.Seed)
		c, err := buildCluster(opts, stashSystem, replication.Config{}, func(cfg *cluster.Config) {
			cfg.Resilience = tr.rc
			cfg.Faults = fp
		})
		if err != nil {
			return rep, err
		}
		// Warm-up: the paper's workloads measure the warm STASH path; a
		// cold country query is disk-bound and no 25ms deadline could
		// hold, so prime each owner directly without deadlines.
		for _, q := range qs {
			keys, err := q.Footprint()
			if err != nil {
				c.Stop()
				return rep, err
			}
			for id, owned := range c.Client().GroupByOwner(keys) {
				if _, err := c.Node(id).Submit(context.Background(), owned); err != nil {
					c.Stop()
					return rep, fmt.Errorf("warm-up: %w", err)
				}
			}
			settle(c, q)
		}
		if tr.faults {
			// One silent failure and one slow node (paused past the
			// per-request deadline) — the paper testbed's two failure
			// archetypes.
			fp.Crash(1)
			fp.Pause(2, 2*tr.rc.RequestTimeout)
		}

		var lat []time.Duration
		var errs int
		var sharesReq, sharesServed int
		for _, q := range qs {
			t0 := time.Now()
			res, err := c.Client().Query(q)
			lat = append(lat, time.Since(t0))
			if err != nil {
				errs++
				continue
			}
			cov := res.Coverage
			if cov.SharesRequested > 0 {
				sharesReq += cov.SharesRequested
				sharesServed += cov.SharesServed
			}
		}
		c.Stop()

		coverage := "n/a"
		if sharesReq > 0 {
			coverage = fmt.Sprintf("%.2f", float64(sharesServed)/float64(sharesReq))
		}
		rep.AddRow(tr.name, fmt.Sprintf("%d", len(qs)),
			ms(quantile(lat, 0.50)), ms(quantile(lat, 0.99)),
			fmt.Sprintf("%d", errs), coverage)
	}
	rep.AddNote("deadline-only turns faults into errors; resilient turns the same faults into partial answers")
	rep.AddNote("resilient coverage < 1.00 is honest under-reporting, not silence: 2 of %d nodes are down", opts.Nodes)
	return rep, nil
}

// quantile returns the q-th latency quantile (nearest-rank).
func quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
