package bench

import (
	"fmt"
	"time"

	"stash/internal/cluster"
	"stash/internal/dht"
	"stash/internal/replication"
	"stash/internal/stash"
	"stash/internal/workload"
)

func init() {
	registry["abl-freshness"] = AblationFreshness
	registry["abl-plm"] = AblationPLM
	registry["abl-antipode"] = AblationAntipode
}

// AblationFreshness isolates §V-C's region-level replacement: a user pans
// around region A, unrelated traffic then fills the (capacity-constrained)
// cache past its threshold, and the user returns to A. With dispersion, A's
// cells carry neighborhood boosts and out-score the one-shot filler, so the
// return visit hits; without it, A ties with the filler and gets evicted.
func AblationFreshness(opts Options) (Report, error) {
	rep := Report{
		ID:      "abl-freshness",
		Title:   "cell replacement with vs without freshness dispersion (constrained cache)",
		Columns: []string{"dispersion", "return_hits", "return_misses", "return_hit_rate"},
	}
	run := func(disperse bool) (int64, int64, error) {
		c, err := buildCluster(opts, stashSystem, replication.Config{}, func(cfg *cluster.Config) {
			cfg.Nodes = 1 // single shard: capacity pressure is direct
			sc := stash.DefaultConfig()
			sc.Capacity = 100
			sc.SafeFraction = 0.5
			sc.Disperse = disperse
			cfg.Stash = &sc
		})
		if err != nil {
			return 0, 0, err
		}
		defer c.Stop()
		rng := newRng(opts, 13)

		regionA := workload.RandomQuery(rng, workload.County)
		visit := workload.PanningStar(regionA, 0.25)
		for _, q := range visit {
			if _, err := c.Client().Query(q); err != nil {
				return 0, 0, err
			}
			settle(c, q)
		}
		// Unrelated one-shot traffic breaching the capacity threshold.
		for i := 0; i < opts.pick(16, 32); i++ {
			q := workload.RandomQuery(rng, workload.County)
			if _, err := c.Client().Query(q); err != nil {
				return 0, 0, err
			}
			settle(c, q)
		}
		// Return to region A; measure hits on the revisit only.
		before := c.TotalStats()
		for _, q := range visit {
			if _, err := c.Client().Query(q); err != nil {
				return 0, 0, err
			}
		}
		after := c.TotalStats()
		return after.CacheHits - before.CacheHits, after.CacheMisses - before.CacheMisses, nil
	}

	var rates [2]float64
	for i, disperse := range []bool{true, false} {
		hits, misses, err := run(disperse)
		if err != nil {
			return rep, err
		}
		rates[i] = float64(hits) / float64(hits+misses)
		rep.AddRow(fmt.Sprintf("%v", disperse),
			fmt.Sprintf("%d", hits), fmt.Sprintf("%d", misses),
			fmt.Sprintf("%.1f%%", rates[i]*100))
	}
	rep.AddNote("return-visit hit rate: dispersion %.1f%% vs ablated %.1f%%", rates[0]*100, rates[1]*100)
	return rep, nil
}

// AblationPLM isolates the precision-level map (§IV-D): without it a node
// cannot identify which chunks are missing and refetches whole requests, so
// partially overlapping queries pay near-full disk cost.
func AblationPLM(opts Options) (Report, error) {
	rep := Report{
		ID:      "abl-plm",
		Title:   "PLM missing-chunk identification vs whole-request refetch",
		Columns: []string{"plm", "disk_cells", "pan_avg_ms"},
	}
	start := workload.RandomQuery(newRng(opts, 14), workload.State)
	qs := workload.PanningStar(start, 0.10)

	run := func(disable bool) (int64, time.Duration, error) {
		c, err := buildCluster(opts, stashSystem, replication.Config{}, func(cfg *cluster.Config) {
			cfg.DisablePLM = disable
		})
		if err != nil {
			return 0, 0, err
		}
		defer c.Stop()
		lat, err := sessionLatencies(c, qs)
		if err != nil {
			return 0, 0, err
		}
		return c.TotalStats().DiskCells, avg(lat[1:]), nil
	}

	withCells, withLat, err := run(false)
	if err != nil {
		return rep, err
	}
	withoutCells, withoutLat, err := run(true)
	if err != nil {
		return rep, err
	}
	rep.AddRow("on", fmt.Sprintf("%d", withCells), ms(withLat))
	rep.AddRow("off", fmt.Sprintf("%d", withoutCells), ms(withoutLat))
	rep.AddNote("PLM should fetch fewer cells from disk (%d vs %d) and lower pan latency", withCells, withoutCells)
	return rep, nil
}

// AblationAntipode isolates helper selection (§VII-B3): antipode-directed
// placement should put replicas on nodes that are NOT already serving the
// hotspot, while random placement sometimes lands on loaded nodes.
// Measured as the overlap between helper nodes and hotspot owner nodes.
func AblationAntipode(opts Options) (Report, error) {
	rep := Report{
		ID:      "abl-antipode",
		Title:   "helper selection: antipode-directed vs uniform random",
		Columns: []string{"strategy", "trials", "helper_on_hotspot_owner"},
	}
	trials := opts.pick(200, 2000)
	ring, err := dht.NewRing(opts.Nodes, 2)
	if err != nil {
		return rep, err
	}
	rng := newRng(opts, 15)
	cfg := replication.DefaultConfig()

	antipodeHits, randomHits := 0, 0
	for i := 0; i < trials; i++ {
		q := workload.RandomQuery(rng, workload.County)
		keys, err := q.Footprint()
		if err != nil || len(keys) == 0 {
			continue
		}
		// Owners serving the hotspot region.
		owners := map[dht.NodeID]bool{}
		for _, k := range keys {
			owners[ring.Owner(k.Geohash)] = true
		}
		root := keys[0].Geohash
		self := ring.Owner(root)

		cands := replication.CandidateHelpers(root, ring, self, cfg, rng)
		if len(cands) > 0 && owners[cands[0]] {
			antipodeHits++
		}
		if owners[ring.Nodes()[rng.Intn(ring.Size())]] {
			randomHits++
		}
	}
	rep.AddRow("antipode", fmt.Sprintf("%d", trials), fmt.Sprintf("%d", antipodeHits))
	rep.AddRow("random", fmt.Sprintf("%d", trials), fmt.Sprintf("%d", randomHits))
	rep.AddNote("antipode placement should land on hotspot-serving nodes less often than random")
	return rep, nil
}
