package bench

import (
	"fmt"
	"time"

	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/workload"
)

func init() {
	registry["fig7a"] = Fig7aDicingDescending
	registry["fig7b"] = Fig7bDicingAscending
	registry["fig7c"] = Fig7cPanning
	registry["fig7d"] = Fig7dDrillDown
	registry["fig7e"] = Fig7eRollUp
}

// dicingSession runs one iterative-dicing sequence against a basic and a
// STASH cluster and reports per-step latency.
func dicingSession(opts Options, id, title string, build func(start query.Query) []query.Query) (Report, error) {
	rep := Report{
		ID:      id,
		Title:   title,
		Columns: []string{"step", "basic_ms", "stash_ms", "reduction_vs_basic"},
	}
	start := workload.RandomQuery(newRng(opts, 7), workload.Country)
	qs := build(start)

	basic, err := buildCluster(opts, basicSystem, replication.Config{}, nil)
	if err != nil {
		return rep, err
	}
	basicLat, err := sessionLatencies(basic, qs)
	basic.Stop()
	if err != nil {
		return rep, err
	}

	cached, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
	if err != nil {
		return rep, err
	}
	stashLat, err := sessionLatencies(cached, qs)
	cached.Stop()
	if err != nil {
		return rep, err
	}

	for i := range qs {
		rep.AddRow(fmt.Sprintf("%d", i+1), ms(basicLat[i]), ms(stashLat[i]), pct(basicLat[i], stashLat[i]))
	}
	if len(qs) > 1 {
		rep.AddNote("steps 2+: STASH averages %s vs basic %s",
			ms(avg(stashLat[1:])), ms(avg(basicLat[1:])))
	}
	return rep, nil
}

// Fig7aDicingDescending reproduces Fig. 7a: 5 queries shrinking the spatial
// area 20% per step from country size. From the second query on, the STASH
// footprint is fully nested in cached cells, so latency collapses.
func Fig7aDicingDescending(opts Options) (Report, error) {
	return dicingSession(opts, "fig7a", "descending iterative dicing (5 steps, -20% area each)",
		func(start query.Query) []query.Query {
			return workload.DicingDescending(start, 5, 0.20)
		})
}

// Fig7bDicingAscending reproduces Fig. 7b: the same queries in reverse
// order. Each step finds only a fraction of its footprint cached, so the
// improvement is real but smaller than descending.
func Fig7bDicingAscending(opts Options) (Report, error) {
	return dicingSession(opts, "fig7b", "ascending iterative dicing (5 steps, +area each)",
		func(start query.Query) []query.Query {
			return workload.DicingAscending(start, 5, 0.20)
		})
}

// Fig7cPanning reproduces Fig. 7c: a state-level query panned by
// 10/20/25% in all 8 directions; basic vs STASH average latency of the
// panned queries. Paper: 60-73% latency reduction at 25% pan.
func Fig7cPanning(opts Options) (Report, error) {
	rep := Report{
		ID:      "fig7c",
		Title:   "panning a state-level query (8 directions per fraction)",
		Columns: []string{"pan", "basic_ms", "stash_ms", "reduction"},
	}
	start := workload.RandomQuery(newRng(opts, 8), workload.State)

	for _, frac := range []float64{0.10, 0.20, 0.25} {
		qs := workload.PanningStar(start, frac)

		basic, err := buildCluster(opts, basicSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		basicLat, err := sessionLatencies(basic, qs)
		basic.Stop()
		if err != nil {
			return rep, err
		}

		cached, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		stashLat, err := sessionLatencies(cached, qs)
		cached.Stop()
		if err != nil {
			return rep, err
		}

		// Average over the 8 panned queries (steps 2..9), as in the figure.
		b, s := avg(basicLat[1:]), avg(stashLat[1:])
		rep.AddRow(fmt.Sprintf("%.0f%%", frac*100), ms(b), ms(s), pct(b, s))
		if frac == 0.25 {
			rep.AddNote("25%% pan: STASH reduces latency by %s (paper: 60-73%%)", pct(b, s))
		}
	}
	return rep, nil
}

// zoomSession measures a drill-down or roll-up ladder against the basic
// system and STASH graphs pre-stocked with 50/75/100% of the relevant cells
// (paper §VIII-D2; expect >= 40% improvement in every partial scenario).
func zoomSession(opts Options, id, title string, build func(base query.Query) []query.Query) (Report, error) {
	rep := Report{
		ID:      id,
		Title:   title,
		Columns: []string{"step(res)", "basic_ms", "stash50_ms", "stash75_ms", "stash100_ms"},
	}
	base := workload.RandomQuery(newRng(opts, 9), workload.State)
	qs := build(base)

	basic, err := buildCluster(opts, basicSystem, replication.Config{}, nil)
	if err != nil {
		return rep, err
	}
	basicLat, err := sessionLatencies(basic, qs)
	basic.Stop()
	if err != nil {
		return rep, err
	}

	fracs := []float64{0.50, 0.75, 1.00}
	lats := make([][]time.Duration, len(fracs))
	for fi, frac := range fracs {
		cached, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		for _, q := range qs {
			if err := warmFraction(cached, q, frac, opts.Seed+int64(fi)); err != nil {
				cached.Stop()
				return rep, err
			}
		}
		l, err := sessionLatencies(cached, qs)
		cached.Stop()
		if err != nil {
			return rep, err
		}
		lats[fi] = l
	}

	for i, q := range qs {
		rep.AddRow(fmt.Sprintf("%d(res%d)", i+1, q.SpatialRes),
			ms(basicLat[i]), ms(lats[0][i]), ms(lats[1][i]), ms(lats[2][i]))
	}
	rep.AddNote("session avg: basic %s, 50%%=%s, 75%%=%s, 100%%=%s (paper: >=40%% improvement at any partial stock)",
		ms(avg(basicLat)), ms(avg(lats[0])), ms(avg(lats[1])), ms(avg(lats[2])))
	return rep, nil
}

// zoomLadder is the simulation-scale analogue of the paper's resolution
// 2..6 ladder: 2..5 keeps the per-step x32 cell growth while the finest
// level stays tractable in one process (see EXPERIMENTS.md).
const (
	zoomFromRes = 2
	zoomToRes   = 5
)

// Fig7dDrillDown reproduces Fig. 7d: drill-down (zoom-in) over a state
// area, spatial resolution increasing one step per query.
func Fig7dDrillDown(opts Options) (Report, error) {
	return zoomSession(opts, "fig7d", "drill-down (zoom-in) with 50/75/100% pre-stocked cells",
		func(base query.Query) []query.Query {
			return workload.DrillDownSession(base, zoomFromRes, zoomToRes)
		})
}

// Fig7eRollUp reproduces Fig. 7e: roll-up (zoom-out), the drill-down ladder
// in reverse.
func Fig7eRollUp(opts Options) (Report, error) {
	return zoomSession(opts, "fig7e", "roll-up (zoom-out) with 50/75/100% pre-stocked cells",
		func(base query.Query) []query.Query {
			return workload.RollUpSession(base, zoomFromRes, zoomToRes)
		})
}
