package bench

import (
	"fmt"
	"time"

	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/workload"
)

func init() {
	registry["ext-elastic"] = ExtElastic
}

// elasticOutcome carries the structured numbers behind the ext-elastic
// report so tests can assert the shape (warm handoff beats cold join, the
// post-join dip recovers) instead of re-parsing table rows.
type elasticOutcome struct {
	steadyWarm    int64 // blocks read per steady-state pass, warm-handoff run
	dipWarm       int64 // blocks read on the first pass after a warm join
	recoveredWarm int64 // blocks read once population caught back up
	steadyCold    int64
	dipCold       int64
	recoveredCold int64
	movedKeys     int           // footprint keys whose owner changed at the join
	cellsMigrated int64         // cells shipped by the warm handoff
	bytesMigrated int64         // wire bytes shipped by the warm handoff
	handoffWarm   time.Duration // Join() wall time including migration
	handoffCold   time.Duration
}

// ExtElastic measures what elastic membership costs the cache: a node joins
// a warmed cluster mid-workload, taking ownership of a slice of the keyspace.
// With the warm handoff the departing owners ship their resident cells to
// the new node inside the epoch flip, so the first post-join pass barely
// touches disk. The "cold" arm runs the identical join but discards the
// shipped cells on arrival — the rehashed slice of the footprint must be
// repopulated from disk, which is exactly what a naive join (or a crashed
// transfer) costs.
func ExtElastic(opts Options) (Report, error) {
	rep, _, err := runExtElastic(opts)
	return rep, err
}

func runExtElastic(opts Options) (Report, elasticOutcome, error) {
	rep := Report{
		ID:      "ext-elastic",
		Title:   "online node join: warm-cell handoff vs cold join on a warmed cluster",
		Columns: []string{"mode", "phase", "epoch", "nodes", "makespan_ms", "blocks_read", "cells_migrated", "handoff_ms"},
	}
	var out elasticOutcome

	nSessions := opts.pick(4, 10)
	steps := opts.pick(5, 10)
	// Distinct pan paths per session, spreading the footprint across many
	// partitions so the rehashed slice at the join overlaps it. Both arms
	// replay the exact same workload under the same seed.
	sessions := make([][]query.Query, nSessions)
	var footprint []cell.Key
	for i := range sessions {
		q := workload.RandomQuery(newRng(opts, 31+int64(i)), workload.State)
		path := make([]query.Query, 0, steps)
		for s := 0; s < steps; s++ {
			path = append(path, q)
			if keys, err := q.Footprint(); err == nil {
				footprint = append(footprint, keys...)
			}
			q = q.Pan(geohash.East, 0.25)
		}
		sessions[i] = path
	}
	settleAll := func(c *cluster.Cluster) {
		for _, sess := range sessions {
			for _, q := range sess {
				settle(c, q)
			}
		}
	}

	for _, mode := range []string{"cold", "warm"} {
		c, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, out, err
		}
		pass := func(phase string) (time.Duration, int64, error) {
			before := c.TotalStats().BlocksRead
			mk, err := runSessions(c, sessions, nSessions)
			if err != nil {
				return 0, 0, err
			}
			blocks := c.TotalStats().BlocksRead - before
			rep.AddRow(mode, phase, fmt.Sprintf("%d", c.Epoch()),
				fmt.Sprintf("%d", c.Ring().Size()), ms(mk),
				fmt.Sprintf("%d", blocks), "-", "-")
			return mk, blocks, nil
		}

		// Populate, then measure the warmed steady state.
		if _, _, err := pass("populate"); err != nil {
			c.Stop()
			return rep, out, err
		}
		settleAll(c)
		_, steady, err := pass("steady")
		if err != nil {
			c.Stop()
			return rep, out, err
		}

		// The join. Both arms run the full three-phase handoff; the cold arm
		// then discards the shipped cells on the new owner, leaving exactly
		// the state a transfer-free join would: old owners already extracted,
		// new owner empty.
		oldRing := c.Ring()
		t0 := time.Now()
		joined, err := c.Join()
		handoff := time.Since(t0)
		if err != nil {
			c.Stop()
			return rep, out, err
		}
		st := c.RebalanceStatus()
		newRing := c.Ring()
		moved := 0
		for _, k := range footprint {
			if oldRing.Owner(k.Geohash) != newRing.Owner(k.Geohash) {
				moved++
			}
		}
		if mode == "cold" {
			parts := make(map[string]bool)
			for _, p := range newRing.PartitionsOf(joined) {
				parts[p] = true
			}
			g := c.Node(joined).Graph()
			g.ExtractPartitions(newRing.PrefixLen(), parts) // discard: the cells never arrived
			out.handoffCold = handoff
		} else {
			out.handoffWarm = handoff
			out.cellsMigrated = st.CellsMigrated
			out.bytesMigrated = st.BytesMigrated
			out.movedKeys = moved
		}
		rep.AddRow(mode, "join", fmt.Sprintf("%d", c.Epoch()),
			fmt.Sprintf("%d", c.Ring().Size()), "-", "-",
			fmt.Sprintf("%d", st.CellsMigrated), ms(handoff))

		// First pass after the flip is the dip; settle and re-run for the
		// recovered steady state.
		_, dip, err := pass("post-join")
		if err != nil {
			c.Stop()
			return rep, out, err
		}
		settleAll(c)
		_, recovered, err := pass("recovered")
		c.Stop()
		if err != nil {
			return rep, out, err
		}

		if mode == "cold" {
			out.steadyCold, out.dipCold, out.recoveredCold = steady, dip, recovered
		} else {
			out.steadyWarm, out.dipWarm, out.recoveredWarm = steady, dip, recovered
		}
	}

	rep.AddNote("join rehashed %d of %d footprint keys to new owners", out.movedKeys, len(footprint))
	rep.AddNote("warm handoff shipped %d cells (%d wire bytes) inside the epoch flip (%s ms)",
		out.cellsMigrated, out.bytesMigrated, ms(out.handoffWarm))
	rep.AddNote("first post-join pass: %d blocks warm vs %d blocks cold — the handoff keeps the moved slice cached",
		out.dipWarm, out.dipCold)
	rep.AddNote("cold arm recovers by re-reading disk: steady %d -> dip %d -> recovered %d blocks/pass",
		out.steadyCold, out.dipCold, out.recoveredCold)
	return rep, out, nil
}
