package bench

import (
	"fmt"
	"time"

	"stash/internal/elastic"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/workload"
)

func init() {
	registry["fig8a"] = Fig8aPanningVsES
	registry["fig8b"] = Fig8bDicingAscVsES
	registry["fig8c"] = Fig8cDicingDescVsES
}

// buildElastic assembles the comparator engine with the same dataset and
// cost model as the STASH cluster.
func buildElastic(opts Options) *elastic.Engine {
	cfg := elastic.DefaultConfig()
	cfg.Seed = uint64(opts.Seed)
	cfg.PointsPerBlock = opts.PointsPerBlock
	cfg.Model = experimentModel()
	cfg.Sleeper = simnet.NewReal()
	cfg.Shards = opts.pick(60, 600)
	return elastic.New(cfg)
}

// esSession measures per-query latency of a session against the ES
// comparator.
func esSession(e *elastic.Engine, qs []query.Query) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(qs))
	for _, q := range qs {
		start := time.Now()
		if _, err := e.Query(q); err != nil {
			return nil, err
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

// vsESSession contrasts sessions on STASH and on ES, reporting per-step
// latency (averaged across the sessions, which damps wall-clock noise) and
// the reduction relative to each system's own first query — the metric
// Fig. 8 plots. note, if non-empty, is appended with the two session-average
// drops.
func vsESSession(opts Options, id, title, note string, sessions [][]query.Query) (Report, error) {
	rep := Report{
		ID:      id,
		Title:   title,
		Columns: []string{"step", "stash_ms", "stash_drop", "es_ms", "es_drop"},
	}
	steps := len(sessions[0])
	stashLat := make([]time.Duration, steps)
	esLat := make([]time.Duration, steps)

	for _, qs := range sessions {
		// Fresh systems per session: sessions are independent users on
		// independent regions; averaging their per-step latencies damps
		// noise without cross-session cache pollution.
		cached, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		sl, err := sessionLatencies(cached, qs)
		cached.Stop()
		if err != nil {
			return rep, err
		}
		es := buildElastic(opts)
		el, err := esSession(es, qs)
		if err != nil {
			return rep, err
		}
		for i := 0; i < steps; i++ {
			stashLat[i] += sl[i]
			esLat[i] += el[i]
		}
	}
	n := time.Duration(len(sessions))
	for i := 0; i < steps; i++ {
		stashLat[i] /= n
		esLat[i] /= n
	}

	for i := 0; i < steps; i++ {
		rep.AddRow(fmt.Sprintf("%d", i+1),
			ms(stashLat[i]), pct(stashLat[0], stashLat[i]),
			ms(esLat[i]), pct(esLat[0], esLat[i]))
	}
	if steps > 1 && note != "" {
		rep.AddNote("steps 2+ drop vs first query: STASH %s, ES %s (%s)",
			pct(stashLat[0], avg(stashLat[1:])), pct(esLat[0], avg(esLat[1:])), note)
	}
	return rep, nil
}

// Fig8aPanningVsES reproduces Fig. 8a: the panning session on STASH vs
// ElasticSearch.
func Fig8aPanningVsES(opts Options) (Report, error) {
	rng := newRng(opts, 10)
	var sessions [][]query.Query
	for i := 0; i < opts.pick(4, 8); i++ {
		sessions = append(sessions, workload.PanningStar(workload.RandomQuery(rng, workload.State), 0.10))
	}
	return vsESSession(opts, "fig8a", "panning: STASH vs ElasticSearch",
		"paper: STASH ~49.7-70%, ES ~0.6-2%", sessions)
}

// Fig8bDicingAscVsES reproduces Fig. 8b: ascending iterative dicing on
// STASH vs ElasticSearch.
func Fig8bDicingAscVsES(opts Options) (Report, error) {
	rng := newRng(opts, 11)
	var sessions [][]query.Query
	for i := 0; i < opts.pick(2, 4); i++ {
		sessions = append(sessions, workload.DicingAscending(workload.RandomQuery(rng, workload.Country), 5, 0.20))
	}
	return vsESSession(opts, "fig8b", "ascending dicing: STASH vs ElasticSearch",
		"paper: STASH drops much steeper from step 2 on; ES grows with query size", sessions)
}

// Fig8cDicingDescVsES reproduces Fig. 8c: descending iterative dicing on
// STASH vs ElasticSearch.
func Fig8cDicingDescVsES(opts Options) (Report, error) {
	rng := newRng(opts, 12)
	var sessions [][]query.Query
	for i := 0; i < opts.pick(2, 4); i++ {
		sessions = append(sessions, workload.DicingDescending(workload.RandomQuery(rng, workload.Country), 5, 0.20))
	}
	return vsESSession(opts, "fig8c", "descending dicing: STASH vs ElasticSearch",
		"paper: STASH near-total drop from step 2; ES falls only with shrinking query size", sessions)
}
