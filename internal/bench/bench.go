// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation (§VIII), each regenerating the figure's rows or
// series against the simulated cluster. Runners return structured Reports
// and print them, so both the stashbench CLI and the testing.B benchmarks
// drive the same code.
//
// Absolute numbers differ from the paper (the substrate is a scaled
// simulation, not 120 HP Z420s); the quantities that must reproduce are the
// *shapes*: who wins, by roughly what factor, and where the crossovers are.
// EXPERIMENTS.md records paper-vs-measured per experiment.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"stash/internal/cluster"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/stash"
)

// Options scales an experiment run.
type Options struct {
	// Nodes is the simulated cluster size. The paper used 120; Quick runs
	// default to 16 for wall-clock friendliness.
	Nodes int
	// Seed drives workload placement and the synthetic dataset.
	Seed int64
	// PointsPerBlock is the synthetic block density. Denser blocks raise
	// the disk-path cost, as in the real system where raw points vastly
	// outnumber aggregated cells.
	PointsPerBlock int
	// Quick shrinks request counts/repetitions for CI-sized runs.
	Quick bool
	// Stripes overrides the STASH graph lock-striping factor (0 keeps the
	// cache default).
	Stripes int
	// PopulationWorkers overrides the per-node bounded cache-population
	// pool size (0 keeps the cluster default).
	PopulationWorkers int
	// ParallelReads bounds concurrent block reads per disk fetch (0/1 keep
	// the serial scan).
	ParallelReads int
	// Coalesce enables client-side request coalescing plus serve-side
	// singleflight on the built clusters.
	Coalesce bool
	// CoalesceWindow overrides the coalescer admission window (0 with
	// Coalesce set uses cluster.DefaultCoalesceWindow).
	CoalesceWindow time.Duration
	// Out receives the printed report; nil discards it.
	Out io.Writer
}

// DefaultOptions returns a quick-run configuration. The block density and
// the cost model together are calibrated so the basic-vs-warm ratio at
// country/state sizes lands near the paper's ~5x (see EXPERIMENTS.md).
func DefaultOptions() Options {
	return Options{Nodes: 16, Seed: 42, PointsPerBlock: 512, Quick: true}
}

func (o Options) normalized() Options {
	if o.Nodes <= 0 {
		o.Nodes = 16
	}
	if o.PointsPerBlock <= 0 {
		o.PointsPerBlock = 512
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// pick selects by run scale.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Report is one regenerated table or series. The JSON tags are the
// `stashbench -json` wire shape (BENCH_*.json), tracked across PRs; renaming
// them breaks downstream trajectory tooling.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carries shape assertions ("warm beats basic by 6.2x") that
	// EXPERIMENTS.md quotes.
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a shape note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Runner regenerates one experiment.
type Runner func(Options) (Report, error)

// registry maps experiment IDs to runners; populated by the fig*.go files.
var registry = map[string]Runner{}

// Experiments lists the registered experiment IDs in sorted order.
func Experiments() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one experiment by ID and prints its report to opts.Out.
func Run(id string, opts Options) (Report, error) {
	r, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
	}
	opts = opts.normalized()
	rep, err := r(opts)
	if err != nil {
		return rep, err
	}
	rep.Print(opts.Out)
	return rep, nil
}

// --- shared cluster builders and measurement helpers ---

// systemKind selects what serves queries in a scenario.
type systemKind int

const (
	basicSystem systemKind = iota // Galileo only, no cache
	stashSystem                   // STASH-enabled
)

func buildCluster(opts Options, kind systemKind, repl replication.Config, mutate func(*cluster.Config)) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = opts.Nodes
	cfg.Seed = uint64(opts.Seed)
	cfg.PointsPerBlock = opts.PointsPerBlock
	cfg.Sleeper = simnet.NewReal()
	cfg.Model = experimentModel()
	cfg.Replication = repl
	if kind == basicSystem {
		cfg.Stash = nil
	} else {
		sc := stash.DefaultConfig()
		if opts.Stripes > 0 {
			sc.Stripes = opts.Stripes
		}
		cfg.Stash = &sc
	}
	if opts.PopulationWorkers > 0 {
		cfg.PopulationWorkers = opts.PopulationWorkers
	}
	if opts.ParallelReads > 0 {
		cfg.GalileoParallelReads = opts.ParallelReads
	}
	if opts.Coalesce {
		cfg.CoalesceWindow = opts.CoalesceWindow
		if cfg.CoalesceWindow <= 0 {
			cfg.CoalesceWindow = cluster.DefaultCoalesceWindow
		}
		cfg.ServeSingleflight = true
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	return c, nil
}

// experimentModel prices I/O so that disk dominates, as on the paper's
// testbed (scaled ~100x down so suites finish in seconds). DiskPoint covers
// read bandwidth plus record deserialization; it is the dominant term, as on
// real hardware where a basic country-sized query pulls gigabytes off disk
// while the warm cache path moves only kilobytes of aggregated cells.
func experimentModel() simnet.Model {
	return simnet.Model{
		DiskSeek:  500 * time.Microsecond,
		DiskPoint: 2 * time.Microsecond,
		NetHop:    10 * time.Microsecond,
		NetByte:   1 * time.Nanosecond,
		MemCell:   30 * time.Nanosecond,
	}
}

// timedQuery measures one query's latency.
func timedQuery(c *cluster.Cluster, q query.Query) (time.Duration, error) {
	_, d, err := c.Client().TimedQuery(q)
	return d, err
}

// settle waits until background cache population covers the query footprint
// (or times out), emulating user think-time between session steps. Each
// owner must hold its own share of the footprint.
func settle(c *cluster.Cluster, q query.Query) {
	keys, err := q.Footprint()
	if err != nil {
		return
	}
	byOwner := c.Client().GroupByOwner(keys)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for id, owned := range byOwner {
			g := c.Node(id).Graph()
			if g == nil {
				return // basic system: nothing to settle
			}
			if g.PLM().Completeness(owned) < 1 {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sessionLatencies runs queries sequentially, measuring each and settling
// population between steps.
func sessionLatencies(c *cluster.Cluster, qs []query.Query) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(qs))
	for _, q := range qs {
		d, err := timedQuery(c, q)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		settle(c, q)
	}
	return out, nil
}

// runConcurrent fires all queries with the given in-flight limit, returning
// each query's completion time offset from the workload start and the total
// makespan.
func runConcurrent(c *cluster.Cluster, qs []query.Query, inflight int) ([]time.Duration, time.Duration, error) {
	if inflight <= 0 {
		inflight = 32
	}
	sem := make(chan struct{}, inflight)
	completions := make([]time.Duration, len(qs))
	errs := make(chan error, len(qs))
	start := time.Now()
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q query.Query) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := c.Client().Query(q); err != nil {
				errs <- err
				return
			}
			completions[i] = time.Since(start)
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, 0, err
	}
	return completions, time.Since(start), nil
}

// runSessions runs user sessions concurrently (bounded by inflight), each
// session's queries sequentially — the paper's throughput-workload user
// model. Returns the makespan.
func runSessions(c *cluster.Cluster, sessions [][]query.Query, inflight int) (time.Duration, error) {
	if inflight <= 0 {
		inflight = 32
	}
	sem := make(chan struct{}, inflight)
	errs := make(chan error, len(sessions))
	start := time.Now()
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		sem <- struct{}{}
		go func(sess []query.Query) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, q := range sess {
				if _, err := c.Client().Query(q); err != nil {
					errs <- err
					return
				}
			}
		}(sess)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return 0, err
	}
	return time.Since(start), nil
}

// avg returns the mean duration.
func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// ms formats a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// ratio formats a/b as "N.Nx".
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// pct formats the reduction from base to v as a percentage.
func pct(base, v time.Duration) string {
	if base == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*(1-float64(v)/float64(base)))
}

// newRng builds the experiment PRNG.
func newRng(opts Options, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(opts.Seed*1_000_003 + salt))
}
