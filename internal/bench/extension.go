package bench

import (
	"fmt"
	"time"

	"stash/internal/frontend"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/workload"
)

func init() {
	registry["ext-frontend"] = ExtFrontend
}

// ExtFrontend evaluates the paper's proposed future work (§IX-A): a
// smaller-capacity STASH graph at the front-end plus predictive prefetching.
// A user pans steadily through a state-sized viewport; the runner contrasts
// per-step latency and back-end round trips for (a) the plain coordinator,
// (b) a front-end cache, and (c) a front-end cache with prefetching.
func ExtFrontend(opts Options) (Report, error) {
	rep := Report{
		ID:      "ext-frontend",
		Title:   "front-end STASH graph + prefetching (paper future work)",
		Columns: []string{"tier", "steps", "avg_pan_ms", "fully_local", "back_cells"},
	}
	steps := opts.pick(8, 16)
	start := workload.RandomQuery(newRng(opts, 16), workload.State)
	// A deterministic straight pan: the pattern prefetching is built for.
	session := make([]query.Query, 0, steps+1)
	q := start
	for i := 0; i <= steps; i++ {
		session = append(session, q)
		q = q.Pan(geohash.East, 0.10)
	}

	type tier struct {
		name     string
		frontend bool
		prefetch bool
	}
	for _, tr := range []tier{
		{"coordinator", false, false},
		{"front-cache", true, false},
		{"front-cache+prefetch", true, true},
	} {
		c, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		var lat []time.Duration
		var fullyLocal, backCells int64

		if !tr.frontend {
			lat, err = sessionLatencies(c, session)
			if err != nil {
				c.Stop()
				return rep, err
			}
			backCells = c.TotalStats().DiskCells // informational only
		} else {
			fc := frontend.NewClient(c.Client(), frontend.Config{
				CacheCells: 50_000,
				Prefetch:   tr.prefetch,
			})
			for _, qq := range session {
				t0 := time.Now()
				if _, err := fc.Query(qq); err != nil {
					c.Stop()
					return rep, err
				}
				lat = append(lat, time.Since(t0))
				// Think-time lets background population and prefetch land.
				settle(c, qq)
				fc.Wait()
			}
			st := fc.Stats()
			fullyLocal = st.FullyLocal
			backCells = st.CellsFromBack
		}
		c.Stop()

		rep.AddRow(tr.name, fmt.Sprintf("%d", len(session)),
			ms(avg(lat[1:])), fmt.Sprintf("%d", fullyLocal), fmt.Sprintf("%d", backCells))
	}
	rep.AddNote("prefetching should make most pans fully local (zero back-end round trips)")
	return rep, nil
}
