package bench

import (
	"fmt"
	"math"
	"time"

	"stash/internal/cluster"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/workload"
)

func init() {
	registry["fig6a"] = Fig6aLatency
	registry["fig6b"] = Fig6bThroughput
	registry["fig6c"] = Fig6cMaintenance
	registry["fig6d"] = Fig6dHotspot
}

// Fig6aLatency reproduces Fig. 6a: average query latency per size class
// under three scenarios — the basic system, an empty STASH graph
// (worst case) and a fully populated STASH graph (best case, a duplicate
// query). Expected shape: warm STASH ~5x faster than basic at country/state
// sizes; empty STASH slightly slower than basic (lookup overhead).
func Fig6aLatency(opts Options) (Report, error) {
	rep := Report{
		ID:      "fig6a",
		Title:   "query latency vs query size (basic / empty STASH / warm STASH)",
		Columns: []string{"size", "basic_ms", "empty_stash_ms", "warm_stash_ms", "warm_vs_basic"},
	}
	rng := newRng(opts, 1)

	for _, size := range workload.Sizes() {
		// Small queries are cheap but noisy (timer-slack floor), so run
		// more repetitions of them.
		reps := opts.pick(2, 5)
		if size == workload.County || size == workload.City {
			reps = opts.pick(6, 15)
		}
		var basicTot, coldTot, warmTot time.Duration
		for r := 0; r < reps; r++ {
			q := workload.RandomQuery(rng, size)

			basic, err := buildCluster(opts, basicSystem, replication.Config{}, nil)
			if err != nil {
				return rep, err
			}
			dBasic, err := timedQuery(basic, q)
			basic.Stop()
			if err != nil {
				return rep, err
			}

			cached, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
			if err != nil {
				return rep, err
			}
			dCold, err := timedQuery(cached, q) // empty graph: worst case
			if err != nil {
				cached.Stop()
				return rep, err
			}
			settle(cached, q)
			dWarm, err := timedQuery(cached, q) // duplicate query: best case
			cached.Stop()
			if err != nil {
				return rep, err
			}

			basicTot += dBasic
			coldTot += dCold
			warmTot += dWarm
		}
		n := time.Duration(reps)
		basicAvg, coldAvg, warmAvg := basicTot/n, coldTot/n, warmTot/n
		rep.AddRow(size.String(), ms(basicAvg), ms(coldAvg), ms(warmAvg), ratio(basicAvg, warmAvg))
		if size == workload.Country || size == workload.State {
			rep.AddNote("%s: warm STASH beats basic by %s (paper: ~5x)", size, ratio(basicAvg, warmAvg))
		}
	}
	return rep, nil
}

// Fig6bThroughput reproduces Fig. 6b: sustained throughput of a basic vs a
// STASH-enabled system under a locality-heavy mix (random rectangles, each
// panned repeatedly). The paper reports 5.7x/4x/3.7x improvements for
// state/county/city.
func Fig6bThroughput(opts Options) (Report, error) {
	rep := Report{
		ID:      "fig6b",
		Title:   "throughput vs query size (basic / STASH)",
		Columns: []string{"size", "requests", "basic_qps", "stash_qps", "improvement"},
	}
	rects := opts.pick(12, 100)
	pans := opts.pick(29, 99)
	inflight := 32

	for _, size := range []workload.SizeClass{workload.State, workload.County, workload.City} {
		sessions := workload.ThroughputSessions(newRng(opts, 2), size, rects, pans, 0.10)
		n := 0
		for _, s := range sessions {
			n += len(s)
		}

		basic, err := buildCluster(opts, basicSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		basicTotal, err := runSessions(basic, sessions, inflight)
		basic.Stop()
		if err != nil {
			return rep, err
		}

		cached, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
		if err != nil {
			return rep, err
		}
		stashTotal, err := runSessions(cached, sessions, inflight)
		cached.Stop()
		if err != nil {
			return rep, err
		}

		basicQPS := float64(n) / basicTotal.Seconds()
		stashQPS := float64(n) / stashTotal.Seconds()
		rep.AddRow(size.String(), fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", basicQPS), fmt.Sprintf("%.0f", stashQPS),
			fmt.Sprintf("%.1fx", stashQPS/basicQPS))
		rep.AddNote("%s: STASH throughput %.1fx basic (paper: 5.7x/4x/3.7x for state/county/city)",
			size, stashQPS/basicQPS)
	}
	return rep, nil
}

// Fig6cMaintenance reproduces Fig. 6c: the cold-start STASH maintenance
// cost — time to populate the graph with every cell of a query — which
// shrinks with query size.
func Fig6cMaintenance(opts Options) (Report, error) {
	rep := Report{
		ID:      "fig6c",
		Title:   "STASH maintenance (cold-start cell population) vs query size",
		Columns: []string{"size", "cells", "population_ms"},
	}
	reps := opts.pick(3, 10)
	rng := newRng(opts, 3)

	var prev time.Duration
	for _, size := range workload.Sizes() {
		var tot time.Duration
		var cells int
		for r := 0; r < reps; r++ {
			q := workload.RandomQuery(rng, size)
			c, err := buildCluster(opts, stashSystem, replication.Config{}, nil)
			if err != nil {
				return rep, err
			}
			if _, err := c.Client().Query(q); err != nil {
				c.Stop()
				return rep, err
			}
			settle(c, q)
			st := c.TotalStats()
			tot += st.PopulationTime
			cells += int(st.PopulatedCells)
			c.Stop()
		}
		avgPop := tot / time.Duration(reps)
		rep.AddRow(size.String(), fmt.Sprintf("%d", cells/reps), ms(avgPop))
		if prev > 0 && avgPop > prev {
			rep.AddNote("%s population (%s ms) exceeds the larger class above it — unexpected", size, ms(avgPop))
		}
		prev = avgPop
	}
	rep.AddNote("population time decreases with query size (paper Fig. 6c)")
	return rep, nil
}

// Fig6dHotspot reproduces Fig. 6d: responses per second over time when a
// single region is flooded, with and without dynamic clique replication.
// The replicated run should sustain higher response rates and finish
// earlier (~20s earlier on the paper's testbed).
func Fig6dHotspot(opts Options) (Report, error) {
	rep := Report{
		ID:      "fig6d",
		Title:   "hotspot autoscaling: responses/sec, replication vs none",
		Columns: []string{"second", "no_replication", "with_replication"},
	}
	n := opts.pick(600, 1000)
	qs := workload.HotspotWorkload(newRng(opts, 4), workload.County, n, 0.10)

	run := func(repl replication.Config) ([]time.Duration, time.Duration, error) {
		c, err := buildCluster(opts, stashSystem, repl, func(cfg *cluster.Config) {
			cfg.Workers = 1
			cfg.QueueSize = 2048
			// Aggregation work priced so a flooded node saturates (the
			// paper's nodes bottleneck on query processing, not only disk).
			cfg.Model.MemCell = 200 * time.Microsecond
		})
		if err != nil {
			return nil, 0, err
		}
		defer c.Stop()
		return runConcurrent(c, qs, 256)
	}

	noRepl, noReplTotal, err := run(replication.Config{})
	if err != nil {
		return rep, err
	}
	rc := replication.DefaultConfig()
	rc.QueueThreshold = 100
	rc.Cooldown = time.Hour // paper: "cooldown time was set high"
	rc.RouteTTL = time.Hour
	rc.GuestTTL = time.Hour
	withRepl, withReplTotal, err := run(rc)
	if err != nil {
		return rep, err
	}

	bucket := 250 * time.Millisecond
	buckets := int(maxDur(noReplTotal, withReplTotal)/bucket) + 1
	histNo := make([]int, buckets)
	histWith := make([]int, buckets)
	for _, d := range noRepl {
		histNo[int(d/bucket)]++
	}
	for _, d := range withRepl {
		histWith[int(d/bucket)]++
	}
	for i := 0; i < buckets; i++ {
		rep.AddRow(fmt.Sprintf("%.2f", float64(i)*bucket.Seconds()),
			fmt.Sprintf("%d", histNo[i]), fmt.Sprintf("%d", histWith[i]))
	}
	rep.AddNote("makespan: no-replication %s ms, with-replication %s ms (%s faster; paper: finishes ~20s earlier)",
		ms(noReplTotal), ms(withReplTotal), pct(noReplTotal, withReplTotal))
	return rep, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// warmFraction pre-stocks the cluster's caches with a contiguous REGION
// covering the given fraction of a query's footprint (used by fig7d/e's
// 50/75/100% scenarios). The paper stacks the graph "with regions covering
// 50%, 75% and 100% of all the relevant Cells" — regions, not scattered
// cells: a contiguous stock leaves the missing cells concentrated in few
// storage blocks, which is what makes a partial stock pay off.
func warmFraction(c *cluster.Cluster, q query.Query, frac float64, salt int64) error {
	if frac <= 0 {
		return nil
	}
	sub := q
	if frac < 1 {
		// Shrink toward the southwest corner to an area fraction of frac.
		lin := 1.0
		if frac < 1 {
			lin = sqrt(frac)
		}
		sub.Box.MaxLat = sub.Box.MinLat + sub.Box.Height()*lin
		sub.Box.MaxLon = sub.Box.MinLon + sub.Box.Width()*lin
	}
	pick, err := sub.Footprint()
	if err != nil {
		return err
	}
	if len(pick) == 0 {
		return nil
	}
	if _, err := c.Client().Fetch(pick); err != nil {
		return err
	}
	// Wait for population of the picked share.
	byOwner := c.Client().GroupByOwner(pick)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for id, owned := range byOwner {
			g := c.Node(id).Graph()
			if g == nil {
				return nil
			}
			if g.PLM().Completeness(owned) < 1 {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}
