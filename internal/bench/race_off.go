//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in. Experiments
// that size deadlines against the warm-path cost widen them under -race,
// where every pointer access pays instrumentation overhead.
const raceEnabled = false
