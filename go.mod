module stash

go 1.22
